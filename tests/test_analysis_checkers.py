"""Every checker fires on its fixture with the right code and line.

Fixtures under ``tests/fixtures/analysis/`` carry ``# expect[CODE]``
markers on the lines where a diagnostic must land; the tests compare
the analyzer's full output against exactly that marker set, so both
missed violations *and* false positives fail.
"""

import re
from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
_EXPECT = re.compile(r"#\s*expect\[([A-Z0-9,]+)\]")


def expected_markers(path):
    expected = set()
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _EXPECT.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.add((lineno, code))
    return expected


def assert_matches_markers(*names, respect_suppressions=True):
    paths = [str(FIXTURES / name) for name in names]
    report = analyze_paths(paths, respect_suppressions=respect_suppressions)
    actual = {}
    for diag in report.diagnostics:
        actual.setdefault(Path(diag.path).name, set()).add(
            (diag.line, diag.code))
    expected = {}
    for name in names:
        markers = expected_markers(FIXTURES / name)
        if markers:
            expected[name] = markers
    assert actual == expected, (
        f"analyzer output {actual!r} != expect markers {expected!r}")
    return report


def test_wall_clock_violations_detected():
    assert_matches_markers("det_wall_clock.py")


def test_global_random_and_entropy_detected():
    assert_matches_markers("det_global_random.py")


def test_hash_order_iteration_detected():
    assert_matches_markers("det_set_order.py")


def test_rng_discipline_detected():
    assert_matches_markers("rng_fixture.py")


def test_sim_process_discipline_detected():
    assert_matches_markers("sim_fixture.py")


def test_unslotted_hot_path_classes_detected():
    report = assert_matches_markers("perf_fixture.py")
    by_line = {d.line: d for d in report.diagnostics}
    assert all(d.code == "PERF001" for d in report.diagnostics)
    assert any("Packet" in d.message for d in report.diagnostics)
    # The allow[] escape on DebugProbe must have been honored.
    assert report.suppressed >= 1
    assert not any("DebugProbe" in d.message for d in by_line.values())


def test_raw_spectral_calls_detected():
    report = assert_matches_markers("perf_pmf_fixture.py")
    assert all(d.code == "PERF002" for d in report.diagnostics)
    # Aliased imports must resolve: ``raw_convolve`` and bare ``rfft``
    # both reach numpy under the covers.
    messages = " ".join(d.message for d in report.diagnostics)
    assert "numpy.convolve" in messages
    assert "numpy.fft.rfft" in messages
    # The allow[] escape on the pinned reference must have been honored.
    assert report.suppressed >= 1


def test_unhandled_and_dead_message_kinds_detected():
    report = assert_matches_markers("proto_fixture_node.py")
    by_code = {d.code: d for d in report.diagnostics}
    assert "fixture_write" in by_code["PROTO001"].message
    assert "fixture_drain" in by_code["PROTO002"].message


def test_unreachable_state_detected():
    # The two files must be analyzed together: reachability is a
    # cross-module property.
    report = assert_matches_markers(
        "proto_fixture_states.py", "proto_fixture_states_use.py")
    (diag,) = report.diagnostics
    assert diag.code == "PROTO003"
    assert "ReplicaState.ZOMBIE" in diag.message


def test_stale_read_across_yield_detected():
    report = assert_matches_markers("flow_race1_fixture.py")
    assert all(d.code == "RACE001" for d in report.diagnostics)
    messages = " ".join(d.message for d in report.diagnostics)
    # The finding names the competing writer — the interprocedural
    # evidence that distinguishes a race from a single-owner read.
    assert "_on_vote" in messages
    assert "self.pending" in messages and "self.ballot" in messages


def test_check_then_act_across_yield_detected():
    report = assert_matches_markers("flow_race2_fixture.py")
    assert all(d.code == "RACE002" for d in report.diagnostics)
    messages = " ".join(d.message for d in report.diagnostics)
    assert "_on_expire" in messages


def test_global_handle_escape_detected():
    report = assert_matches_markers("flow_global_fixture.py")
    assert all(d.code == "FLOW001" for d in report.diagnostics)
    messages = " ".join(d.message for d in report.diagnostics)
    # Module scope, global-rebind, container, and through-a-helper
    # paths must all be represented.
    assert "SHARED_ENV" in messages
    assert "_CACHE" in messages and "_RESULTS" in messages
    assert "remember_indirect" in messages


def test_diagnostics_carry_checker_and_severity():
    report = analyze_paths([str(FIXTURES / "det_wall_clock.py")])
    assert report.diagnostics
    for diag in report.diagnostics:
        assert diag.checker == "determinism"
        assert diag.severity.value == "error"
        assert diag.format().startswith(diag.path + ":")
