"""The batched aggregate load engine vs the per-client reference.

The exactness contract: ``AggregateLoad`` in ``exact`` mode replays
the per-client stream draw for draw, so a whole experiment produces
**identical** per-transaction records whether the load was generated
per arrival or per batch, on the timer lane or on heap events.
Vectorized mode has its own (numpy) sample path and is pinned for
determinism instead.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.sim import Environment, RandomStreams
from repro.workload import (
    AggregateLoad,
    BuyTransactionFactory,
    HotspotAccess,
    OpenSystemLoad,
    UniformAccess,
    ZipfianAccess,
)


def _result_digest(result):
    hasher = hashlib.sha256()
    for record in result.metrics.all_records:
        hasher.update(repr(dataclasses.astuple(record)).encode())
    return hasher.hexdigest()


def _run(seed=3, **overrides):
    config = ExperimentConfig(
        name="agg-probe", seed=seed, system="traditional",
        topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
        partitions_per_dc=1, n_items=100, rate_tps=100.0,
        warmup_ms=500.0, duration_ms=2_000.0, drain_ms=1_500.0,
        **overrides)
    return Experiment(config).run()


class _Recorder:
    """Issuer capturing (time, keys, hot) triples for direct parity."""

    def __init__(self, env):
        self.env = env
        self.calls = []
        self.reads = []

    def issue(self, writes, touches_hotspot):
        self.calls.append(
            (self.env.now, tuple(op.key for op in writes), touches_hotspot))

    def issue_read(self, keys):
        self.reads.append((self.env.now, tuple(keys)))


def _drive(load_cls, seed=11, duration_ms=4_000.0, read_fraction=0.0,
           **kwargs):
    env = Environment()
    streams = RandomStreams(seed=seed)
    factory = BuyTransactionFactory(HotspotAccess(200, 20, hot_prob=0.8))
    issuer = _Recorder(env)
    load = load_cls(env, factory, issuer, 300.0, streams,
                    read_fraction=read_fraction, **kwargs)
    load.start(duration_ms=duration_ms)
    env.run(until=duration_ms)
    return issuer, load


# -- exact mode: digest identity with the per-client path ----------------

def test_exact_mode_issues_identically_to_per_client():
    reference, _ = _drive(OpenSystemLoad)
    for batch_size in (1, 7, 256):
        batched, _ = _drive(AggregateLoad, mode="exact",
                            batch_size=batch_size)
        assert batched.calls == reference.calls, f"batch={batch_size}"


def test_exact_mode_without_lane_matches_too():
    reference, _ = _drive(OpenSystemLoad)
    batched, _ = _drive(AggregateLoad, mode="exact", use_timer_lane=False)
    assert batched.calls == reference.calls


def test_exact_mode_read_fraction_parity():
    reference, _ = _drive(OpenSystemLoad, read_fraction=0.3)
    batched, _ = _drive(AggregateLoad, mode="exact", read_fraction=0.3,
                        batch_size=64)
    assert batched.calls == reference.calls
    assert batched.reads == reference.reads


def test_exact_mode_experiment_digest_identity():
    """Whole-experiment pin at small N: per-client vs aggregate-exact,
    lane on and off, must produce byte-identical records."""
    reference = _result_digest(_run())
    for overrides in ({"load_engine": "aggregate"},
                      {"load_engine": "aggregate", "load_timer_lane": False},
                      {"load_engine": "aggregate", "load_batch_size": 13}):
        assert _result_digest(_run(**overrides)) == reference, overrides


def test_default_engine_unchanged():
    config = ExperimentConfig()
    assert config.load_engine == "per-client"


# -- vectorized mode: determinism at large N -----------------------------

def test_vectorized_mode_deterministic_at_large_n():
    def run_once():
        env = Environment()
        streams = RandomStreams(seed=29)
        factory = BuyTransactionFactory(ZipfianAccess(10_000, s=0.99))
        issuer = _Recorder(env)
        load = AggregateLoad(env, factory, issuer, 5_000.0, streams,
                             mode="vectorized", batch_size=2_048,
                             population=100_000)
        load.start(duration_ms=10_000.0)
        env.run(until=10_000.0)
        hasher = hashlib.sha256()
        for call in issuer.calls:
            hasher.update(repr(call).encode())
        return len(issuer.calls), load.distinct_clients(), hasher.hexdigest()

    first = run_once()
    assert first == run_once()
    count, clients, _digest = first
    # ~5k tx/s for 10 simulated seconds, all attributed to users.
    assert 45_000 < count < 55_000
    assert 0 < clients <= 100_000


def test_vectorized_lane_and_heap_paths_identical():
    lane, _ = _drive(AggregateLoad, mode="vectorized")
    heap, _ = _drive(AggregateLoad, mode="vectorized", use_timer_lane=False)
    assert lane.calls == heap.calls


def test_vectorized_experiment_deterministic():
    one = _result_digest(_run(load_engine="aggregate-vectorized"))
    two = _result_digest(_run(load_engine="aggregate-vectorized"))
    assert one == two


def test_stop_cancels_pending_batch():
    env = Environment()
    streams = RandomStreams(seed=1)
    factory = BuyTransactionFactory(UniformAccess(50))
    issuer = _Recorder(env)
    load = AggregateLoad(env, factory, issuer, 100.0, streams)
    load.start()

    def stopper(env):
        yield env.timeout(500.0)
        load.stop()

    env.process(stopper(env))
    env.run()
    assert env.now == 500.0
    assert all(when <= 500.0 for when, _keys, _hot in issuer.calls)
    assert load.issued == len(issuer.calls)


def test_validation():
    env = Environment()
    streams = RandomStreams(seed=1)
    factory = BuyTransactionFactory(UniformAccess(50))
    issuer = _Recorder(env)
    with pytest.raises(ValueError):
        AggregateLoad(env, factory, issuer, 100.0, streams, mode="psychic")
    with pytest.raises(ValueError):
        AggregateLoad(env, factory, issuer, 100.0, streams, batch_size=0)
    with pytest.raises(ValueError):
        AggregateLoad(env, factory, issuer, 100.0, streams, population=-1)
    with pytest.raises(ValueError):
        AggregateLoad(env, factory, issuer, 100.0, streams,
                      read_fraction=1.5)


# -- vectorized batch samplers -------------------------------------------

def test_uniform_sample_batch_distinct_and_cold():
    rng = RandomStreams(seed=5).numpy_generator("t")
    pattern = UniformAccess(100)
    counts = np.array([1, 2, 3, 4] * 25)
    keys, hot = pattern.sample_batch(rng, counts)
    assert len(keys) == 100
    assert not hot.any()
    for row, count in zip(keys, counts):
        assert len(row) == count
        assert len(set(row)) == count


def test_uniform_sample_batch_rejects_oversize():
    rng = RandomStreams(seed=5).numpy_generator("t")
    with pytest.raises(ValueError):
        UniformAccess(3).sample_batch(rng, np.array([4]))


def test_hotspot_sample_batch_regions_and_flags():
    rng = RandomStreams(seed=6).numpy_generator("t")
    pattern = HotspotAccess(1_000, 10, hot_prob=0.9)
    keys, hot = pattern.sample_batch(rng, np.full(500, 3))
    hot_fraction = hot.mean()
    assert 0.8 < hot_fraction < 0.97
    for row, is_hot in zip(keys, hot):
        assert len(set(row)) == len(row)
        for key in row:
            assert pattern.is_hot(key) == bool(is_hot)


def test_hotspot_sample_batch_clamps_to_hot_pool():
    """A hot transaction asking for more items than the hotspot holds
    is clamped, exactly like the scalar path."""
    rng = RandomStreams(seed=7).numpy_generator("t")
    pattern = HotspotAccess(100, 2, hot_prob=1.0)
    keys, hot = pattern.sample_batch(rng, np.array([4, 4]))
    assert hot.all()
    for row in keys:
        assert len(row) == 2
        assert len(set(row)) == 2


def test_hotspot_sample_batch_degenerate_all_hot():
    rng = RandomStreams(seed=8).numpy_generator("t")
    pattern = HotspotAccess(10, 10, hot_prob=0.0)
    keys, hot = pattern.sample_batch(rng, np.full(20, 2))
    assert hot.all()
    for row in keys:
        assert all(pattern.is_hot(key) for key in row)


def test_zipf_sample_batch_skew_and_hot_flags():
    rng = RandomStreams(seed=9).numpy_generator("t")
    pattern = ZipfianAccess(1_000, s=1.1, hot_top=10)
    keys, hot = pattern.sample_batch(rng, np.full(2_000, 2))
    head = sum(1 for row in keys for key in row
               if int(key.rsplit(":", 1)[1]) < 10)
    total = sum(len(row) for row in keys)
    assert head / total > 0.3  # power-law head mass
    for row, is_hot in zip(keys, hot):
        assert len(set(row)) == len(row)
        assert bool(is_hot) == any(pattern.is_hot(key) for key in row)


def test_build_batch_matches_scalar_shape():
    rng = RandomStreams(seed=10).numpy_generator("t")
    factory = BuyTransactionFactory(UniformAccess(500), min_items=2,
                                    max_items=3, quantity=5,
                                    enforce_stock_floor=True)
    writes, hot = factory.build_batch(rng, 50)
    assert len(writes) == 50
    assert len(hot) == 50
    for txn in writes:
        assert 2 <= len(txn) <= 3
        for op in txn:
            assert op.update.value == -5
            assert op.update.floor == 0
