"""Targeted unit tests for smaller paths across the stack."""

import pytest

from repro.core.callbacks import RemoteCallbackService
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams, SimulationError
from repro.storage import Update, WriteOp


# ---------------------------------------------------------------- rng


def test_rng_streams_are_independent_and_stable():
    streams = RandomStreams(seed=7)
    a1 = streams.get("a").random()
    b1 = streams.get("b").random()
    again = RandomStreams(seed=7)
    assert again.get("a").random() == a1
    assert again.get("b").random() == b1
    assert a1 != b1


def test_rng_spawn_derives_child_families():
    parent = RandomStreams(seed=7)
    child_a = parent.spawn("client-1").get("x").random()
    child_b = parent.spawn("client-2").get("x").random()
    assert child_a != child_b
    assert parent.spawn("client-1").get("x").random() == child_a


# ---------------------------------------------------------------- kernel edges


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(42)
    assert env.peek() == 42.0


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


# ---------------------------------------------------------------- callbacks


def test_remote_callback_service_validation():
    env = Environment()
    streams = RandomStreams(seed=1)
    with pytest.raises(ValueError):
        RemoteCallbackService(env, streams, delivery_delay_ms=-1)
    with pytest.raises(ValueError):
        RemoteCallbackService(env, streams, duplicate_prob=2.0)


def test_remote_callback_delivery_delay_and_log():
    env = Environment()
    service = RemoteCallbackService(env, RandomStreams(seed=2),
                                    delivery_delay_ms=25.0)
    seen = []
    service.submit(lambda arg: seen.append((env.now, arg)), "payload")
    env.run()
    assert seen == [(25.0, "payload")]
    assert len(service.delivered) == 1


# ---------------------------------------------------------------- cluster misc


def make_cluster():
    env = Environment()
    topo = uniform_topology(3, one_way_ms=10.0, sigma=0.01)
    cluster = Cluster(env, topo, RandomStreams(seed=3),
                      partitions_per_dc=2)
    return env, cluster


def test_all_replica_addresses_deduplicates():
    env, cluster = make_cluster()
    # Find two keys in the same partition and one in the other.
    keys_p0 = [f"k{i}" for i in range(40) if cluster.partition_of(f"k{i}") == 0]
    keys_p1 = [f"k{i}" for i in range(40) if cluster.partition_of(f"k{i}") == 1]
    addresses = cluster.all_replica_addresses(keys_p0[:2])
    assert len(addresses) == 3  # same partition -> one node per DC
    both = cluster.all_replica_addresses([keys_p0[0], keys_p1[0]])
    assert len(both) == 6


def test_gate_cancellation_cleans_up_tm_state():
    env, cluster = make_cluster()
    cluster.load({"k1": 10})
    tm = cluster.create_client("app", 0)
    stages = []
    handle = tm.begin([WriteOp("k1", Update.delta(-1))],
                      gate_after_reads=True)
    handle.progress_hooks.append(lambda stage, h: stages.append(stage))

    def canceller(env):
        yield env.timeout(10)
        handle.gate.succeed(False)

    env.process(canceller(env))
    env.run()
    assert "cancelled" in stages
    assert "proposed" not in stages
    assert tm.started == 0  # never counted as an attempt
    assert cluster.read_value("k1") == 10
    assert handle.result is None


def test_transaction_result_response_time():
    from repro.mdcc.coordinator import TransactionResult
    result = TransactionResult(txid="t", committed=True, start_ms=100.0,
                               accepted_ms=110.0, decided_ms=175.0)
    assert result.response_time_ms == pytest.approx(75.0)


# ---------------------------------------------------------------- topology misc


def test_transport_counters_track_traffic():
    env, cluster = make_cluster()
    cluster.load({"k1": 10})
    tm = cluster.create_client("app", 0)
    tm.begin([WriteOp("k1", Update.delta(-1))])
    env.run()
    transport = cluster.transport
    assert transport.sent == transport.delivered + transport.dropped
    assert transport.delivered > 10


# ---------------------------------------------------------------- txinfo


def test_txinfo_success_and_final_flags():
    from repro.core import TxInfo, TxState
    committed = TxInfo(txid="t", state=TxState.COMMITTED,
                       commit_likelihood=1.0, timed_out=False,
                       elapsed_ms=10.0, stage="complete")
    assert committed.success and committed.is_final
    spec = TxInfo(txid="t", state=TxState.SPEC_COMMITTED,
                  commit_likelihood=0.97, timed_out=False,
                  elapsed_ms=1.0, stage="complete")
    assert spec.success and not spec.is_final
    rejected = TxInfo(txid="t", state=TxState.REJECTED,
                      commit_likelihood=0.1, timed_out=False,
                      elapsed_ms=0.5, stage="failure")
    assert not rejected.success and rejected.is_final
    accepted = TxInfo(txid="t", state=TxState.ACCEPTED,
                      commit_likelihood=0.9, timed_out=True,
                      elapsed_ms=300.0, stage="accept")
    assert not accepted.success and not accepted.is_final


def test_finish_tx_is_singleton():
    from repro.core import FINISH_TX
    from repro.core.states import _FinishTx
    assert _FinishTx() is FINISH_TX
    assert repr(FINISH_TX) == "FINISH_TX"
