"""Kernel timer wheel: ordering vs heap and lanes, cancellation, RPC.

The contract under test (see :class:`repro.sim.TimerWheel`): wheel
timers fire interleaved with heap events and lane entries in timestamp
order; at exactly equal timestamps the heap wins, then lanes, then the
wheel; a ``run(until=t)`` boundary stops before a wheel timer at
exactly ``t``; cancelled timers never fire, never schedule anything,
and never keep ``run()`` alive; and the RPC reply path cancels the
deadline so a call answered in time touches the heap zero extra times.
"""

import pytest

from repro.net import RpcEndpoint, RpcTimeout, Transport, uniform_topology
from repro.sim import Environment, RandomStreams, TimerWheel


# -- ordering vs the heap and lanes -----------------------------------------

def test_wheel_interleaves_with_heap_events():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(1.0)
        order.append(("heap", env.now))
        yield env.timeout(2.0)
        order.append(("heap", env.now))

    env.process(proc(env))
    for when in (0.5, 1.5, 2.5):
        env.arm_timer(when, lambda w=when: order.append(("wheel", w)))
    env.run()
    assert order == [("wheel", 0.5), ("heap", 1.0), ("wheel", 1.5),
                     ("wheel", 2.5), ("heap", 3.0)]
    assert env.now == 3.0


def test_heap_and_lane_win_exact_timestamp_ties():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(5.0)
        order.append("heap")

    env.process(proc(env))
    env.add_timer_lane([5.0], lambda i: order.append("lane"))
    env.arm_timer(5.0, lambda: order.append("wheel"))
    env.run()
    assert order == ["heap", "lane", "wheel"]


def test_same_deadline_timers_fire_in_arm_order():
    env = Environment()
    fired = []
    for tag in ("a", "b", "c"):
        env.arm_timer(2.0, lambda t=tag: fired.append(t))
    env.run()
    assert fired == ["a", "b", "c"]


def test_until_boundary_stops_before_wheel_timer():
    """A timer at exactly ``until`` must NOT fire — the urgent stop
    event wins the tie, matching Timeout and lane semantics — and it
    survives into the next run window."""
    env = Environment()
    fired = []
    for when in (1.0, 2.0, 3.0):
        env.arm_timer(when, lambda w=when: fired.append(w))
    env.run(until=2.0)
    assert fired == [1.0]
    assert env.now == 2.0
    env.run()
    assert fired == [1.0, 2.0, 3.0]


def test_wheel_advances_clock_when_heap_empty():
    env = Environment()
    at = []
    env.arm_timer(4.0, lambda: at.append(env.now))
    env.arm_timer(9.0, lambda: at.append(env.now))
    env.run()
    assert at == [4.0, 9.0]
    assert env.now == 9.0


def test_peek_and_step_see_wheel_head():
    env = Environment()
    env.arm_timer(3.0, lambda: None)

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    assert env.peek() == 0.0  # the process-initialize event
    env.step()
    assert env.peek() == 3.0  # wheel head beats the 7.0 timeout
    env.step()
    assert env.now == 3.0
    env.run()
    assert env.now == 7.0


def test_long_deadlines_cross_all_wheel_levels():
    """Deadlines land in level 0/1/2 and the overflow list by distance
    (256/256²/256³ ticks at 1 ms per tick) and still fire in order."""
    env = Environment()
    fired = []
    deadlines = [70.0, 70_000.0, 2_000_000.0, 20_000_000.0, 30_000_000.0]
    for when in deadlines:
        env.arm_timer(when, lambda w=when: fired.append(w))
    env.run()
    assert fired == deadlines
    assert env.now == deadlines[-1]


# -- cancellation -----------------------------------------------------------

def test_cancelled_timer_never_fires():
    env = Environment()
    fired = []
    keep = env.arm_timer(1.0, lambda: fired.append("keep"))
    drop = env.arm_timer(2.0, lambda: fired.append("drop"))
    drop.cancel()
    env.run()
    assert fired == ["keep"]
    assert keep.fired and drop.cancelled and not drop.active


def test_cancelled_timers_do_not_keep_run_alive():
    """The perf win under test: dead deadlines neither hold the clock
    nor cost events — an unbounded run quiesces at the last live one."""
    env = Environment()
    fired = []
    env.arm_timer(1.0, lambda: fired.append(env.now))
    stale = [env.arm_timer(5_000.0 + i, lambda: fired.append("stale"))
             for i in range(10)]
    for timer in stale:
        timer.cancel()
    env.run()
    assert fired == [1.0]
    assert env.now == 1.0  # not 5009.0: the husks never held the clock
    assert env.timer_wheel.live == 0


def test_cancel_is_idempotent_and_noop_after_fire():
    env = Environment()
    timer = env.arm_timer(1.0, lambda: None)
    env.run()
    assert timer.fired
    timer.cancel()
    assert timer.fired and not timer.cancelled
    other = env.arm_timer(2.0, lambda: None)
    other.cancel()
    other.cancel()
    assert other.cancelled
    assert env.timer_wheel.cancelled_total == 1


def test_arm_after_fully_cancelled_era_resets_head():
    """Cancel-everything then arm-earlier must not inherit the stale
    head: the wheel resets (never min()s) when nothing was live."""
    env = Environment()
    fired = []
    late = env.arm_timer(10.0, lambda: fired.append("late"))
    late.cancel()
    env.arm_timer(5.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [5.0]
    assert env.now == 5.0


def test_arm_from_callback_lands_after_the_consume_pointer():
    """Arming inside a firing callback inserts into the live due
    window; a skipped cancelled entry with a later deadline must not
    bury the new timer behind the consume pointer."""
    wheel = TimerWheel()
    fired = []
    wheel.arm(0.8, lambda: fired.append(0.8))
    stale = wheel.arm(0.3, lambda: fired.append(0.3))
    stale.cancel()
    wheel._fire_head()  # stale-head visit: repairs the cache, fires nothing
    assert fired == []
    assert wheel.next_deadline() == 0.8
    wheel._fire_head()  # now past the dead 0.3 entry
    assert fired == [0.8]
    wheel.arm(0.5, lambda: fired.append(0.5))
    assert wheel.next_deadline() == 0.5
    wheel._fire_head()
    assert fired == [0.8, 0.5]
    assert wheel.live == 0


def test_callback_may_arm_the_next_deadline():
    """Re-arming from the expiry callback — the retry idiom — keeps
    the clock monotonic."""
    env = Environment()
    fired = []

    def fire():
        fired.append(env.now)
        if len(fired) < 3:
            env.arm_timer(env.now + 1.0, fire)

    env.arm_timer(1.0, fire)
    env.run()
    assert fired == [1.0, 2.0, 3.0]


def test_counters_track_armed_cancelled_fired():
    env = Environment()
    env.arm_timer(1.0, lambda: None)
    env.arm_timer(2.0, lambda: None).cancel()
    env.run()
    wheel = env.timer_wheel
    assert (wheel.armed_total, wheel.cancelled_total,
            wheel.fired_total) == (2, 1, 1)
    assert wheel.live == 0


def test_past_deadline_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    with pytest.raises(ValueError):
        env.arm_timer(4.0, lambda: None)


def test_instrumented_run_fires_wheel_identically():
    """The tracing/metrics slow path drains the wheel identically."""
    env = Environment()
    order = []
    env.tracer = lambda *args, **kwargs: None

    def proc(env):
        yield env.timeout(1.0)
        order.append(("heap", env.now))

    env.process(proc(env))
    env.arm_timer(0.5, lambda: order.append(("wheel", env.now)))
    env.arm_timer(1.5, lambda: order.append(("wheel", env.now)))
    env.run(until=1.2)
    assert order == [("wheel", 0.5), ("heap", 1.0)]
    env.run()
    assert order == [("wheel", 0.5), ("heap", 1.0), ("wheel", 1.5)]


# -- the RPC deadline path --------------------------------------------------

def _echo_pair(env):
    topology = uniform_topology(2, one_way_ms=10.0, sigma=0.05)
    transport = Transport(env, topology, RandomStreams(seed=3))
    client = RpcEndpoint(env, transport, "client", 0)
    server = RpcEndpoint(env, transport, "server", 1)
    server.on("echo", lambda payload, src: payload)
    return client, server


def test_rpc_reply_before_deadline_cancels_wheel_timer():
    """The acceptance pin: N calls answered in time arm N wheel timers
    and cancel all N — zero fire, no expiry work, and the run quiesces
    at the last reply instead of the last deadline."""
    env = Environment()
    client, _server = _echo_pair(env)
    n_calls = 20
    replies = []

    def driver(env):
        for index in range(n_calls):
            response = yield client.call(
                "server", "echo", index, timeout_ms=1_000.0)
            replies.append(response)

    env.process(driver(env))
    env.run()
    assert replies == list(range(n_calls))
    wheel = env.timer_wheel
    assert wheel.armed_total == n_calls
    assert wheel.cancelled_total == n_calls
    assert wheel.fired_total == 0
    assert wheel.live == 0
    assert env.now < 1_000.0  # no dead deadline held the clock


def test_rpc_timeout_still_fires_without_reply():
    env = Environment()
    topology = uniform_topology(2, one_way_ms=10.0, sigma=0.05)
    transport = Transport(env, topology, RandomStreams(seed=3))
    client = RpcEndpoint(env, transport, "client", 0)
    caught = []

    def driver(env):
        try:
            yield client.call("nobody", "echo", 1, timeout_ms=50.0)
        except RpcTimeout:
            caught.append(env.now)

    env.process(driver(env))
    env.run()
    assert caught == [50.0]
    assert env.timer_wheel.fired_total == 1
