"""End-to-end leader-failure and failover scenarios.

The full story a production operator cares about: a record's leader
node crashes; transactions stop deciding; mastership is transferred to
a healthy data center (Paxos phase 1 over the surviving majority); and
commits flow again — with every invariant intact when the crashed node
returns.
"""

import math

import pytest

from repro.core import PlanetSession, TxState
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_cluster(one_way=20.0, mastership=0, seed=83,
                 round_timeout_ms=2_000.0):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=one_way, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      mastership=mastership,
                      round_timeout_ms=round_timeout_ms)
    cluster.load({"item:1": 100})
    return env, cluster


# ---------------------------------------------------------------- node down


def test_take_down_blocks_messages():
    env, cluster = make_cluster()
    address = cluster.node_address(0, cluster.partition_of("item:1"))
    cluster.transport.take_down(address)
    assert cluster.transport.is_down(address)
    tm = cluster.create_client("app", 1)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    env.run(until=10_000)
    # The leader (dc 0) is down: the proposal is lost, nothing decides.
    assert handle.result is None


def test_take_down_unknown_address_rejected():
    env, cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.transport.take_down("ghost")


def test_in_flight_messages_to_crashed_node_are_lost():
    env, cluster = make_cluster(one_way=50.0)
    address = cluster.node_address(1, cluster.partition_of("item:1"))
    received = []
    tm = cluster.create_client("app", 0)

    def driver(env):
        tm.begin([WriteOp("item:1", Update.delta(-1))])
        yield env.timeout(30)  # phase2a to dc1 is mid-flight
        cluster.transport.take_down(address)

    env.process(driver(env))
    env.run(until=10_000)
    # The transaction still decides: dc0 + dc2 form a majority.
    assert cluster.read_value("item:1", dc=0) == 99


# ---------------------------------------------------------------- failover


def test_failover_restores_progress():
    env, cluster = make_cluster(mastership=0)
    old_leader = cluster.node_address(0, cluster.partition_of("item:1"))
    session = PlanetSession(cluster, "web", 1)
    outcomes = []

    def buy(timeout_ms=math.inf):
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=timeout_ms)
              .on_failure(lambda i: None)
              .on_complete(lambda i: outcomes.append(i.state)))
        return tx.execute()

    def driver(env):
        # Healthy commit first.
        first = buy()
        yield first.final_event
        # Leader crashes: the next buy wedges (bounded by its timeout).
        cluster.transport.take_down(old_leader)
        stuck = buy(timeout_ms=1_500)
        yield stuck.closed_event
        assert stuck.committed is None  # undecided, app saw onFailure
        # Operator fails mastership over to dc 1 (majority survives).
        won = yield cluster.transfer_mastership("item:1", 1)
        assert won
        # Commits flow again through the new leader.
        after = buy()
        yield after.final_event

    env.process(driver(env))
    env.run(until=60_000)
    assert outcomes == [TxState.COMMITTED, TxState.COMMITTED]
    assert cluster.leader_dc("item:1") == 1
    # Two committed buys applied at the surviving replicas.
    assert cluster.read_value("item:1", dc=1) == 98
    assert cluster.read_value("item:1", dc=2) == 98


def test_crashed_node_catches_up_via_visibility_retries():
    # The TM retries visibility for a while; if the node comes back
    # inside the retry budget it learns the update it missed.
    env, cluster = make_cluster(mastership=0)
    replica = cluster.node_address(2, cluster.partition_of("item:1"))
    tm = cluster.create_client("app", 0)

    def driver(env):
        cluster.transport.take_down(replica)
        handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
        yield handle.decided_event
        assert handle.result.committed
        yield env.timeout(3_000)
        cluster.transport.bring_up(replica)

    env.process(driver(env))
    env.run(until=60_000)
    # The revived replica learned the committed value.
    assert cluster.read_value("item:1", dc=2) == 99
    assert cluster.total_pending_options() == 0


def test_failover_with_concurrent_load_keeps_invariants():
    env, cluster = make_cluster(mastership=0)
    old_leader = cluster.node_address(0, cluster.partition_of("item:1"))
    tms = [cluster.create_client(f"c{dc}", dc) for dc in range(3)]
    handles = []

    def load(env):
        for i in range(20):
            handles.append(tms[i % 3].begin(
                [WriteOp("item:1", Update.delta(-1))]))
            yield env.timeout(400)

    def chaos(env):
        yield env.timeout(3_000)
        cluster.transport.take_down(old_leader)
        yield env.timeout(1_000)
        yield cluster.transfer_mastership("item:1", 2)
        yield env.timeout(4_000)
        cluster.transport.bring_up(old_leader)

    env.process(load(env))
    env.process(chaos(env))
    env.run(until=120_000)

    committed = sum(1 for h in handles
                    if h.result is not None and h.result.committed)
    decided_txids = {h.txid for h in handles if h.result is not None}
    # No decided transaction leaves a pending window anywhere.
    for nodes in cluster.nodes.values():
        for node in nodes:
            for record in node.records.values():
                for txid in record.pending:
                    assert txid not in decided_txids
    # Replicas that saw all visibilities agree on the committed total;
    # nobody over-applies.
    for dc in (1, 2):
        value = cluster.read_value("item:1", dc=dc)
        assert 100 - committed <= value <= 100
