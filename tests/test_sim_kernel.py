"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(10)
        log.append(env.now)
        yield env.timeout(5.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10.0, 15.5]


def test_timeout_value_is_returned():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value_via_join():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(3)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(3.0, 42)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter(env):
        value = yield gate
        woke.append((env.now, value))

    def opener(env):
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert woke == [(7.0, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("explode")

    env.process(bad(env))
    with pytest.raises(ValueError, match="explode"):
        env.run()


def test_double_trigger_is_an_error():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_run_until_stops_exactly():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=35)
    assert ticks == [10.0, 20.0, 30.0]
    assert env.now == 35.0


def test_run_until_in_past_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(100)

    env.process(proc(env))
    env.run(until=50)
    with pytest.raises(ValueError):
        env.run(until=10)


def test_deterministic_fifo_order_at_same_time():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_all_of_collects_all_values():
    env = Environment()
    seen = []

    def proc(env):
        t1 = env.timeout(3, value="x")
        t2 = env.timeout(8, value="y")
        result = yield AllOf(env, [t1, t2])
        seen.append((env.now, sorted(result.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(8.0, ["x", "y"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    seen = []

    def proc(env):
        result = yield AllOf(env, [])
        seen.append((env.now, result))

    env.process(proc(env))
    env.run()
    assert seen == [(0.0, {})]


def test_any_of_fires_on_first():
    env = Environment()
    seen = []

    def proc(env):
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(8, value="slow")
        result = yield AnyOf(env, [t1, t2])
        seen.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(3.0, ["fast"])]


def test_all_of_propagates_failure():
    env = Environment()
    gate = env.event()
    caught = []

    def proc(env):
        try:
            yield AllOf(env, [env.timeout(10), gate])
        except RuntimeError as exc:
            caught.append((env.now, str(exc)))

    def failer(env):
        yield env.timeout(2)
        gate.fail(RuntimeError("bad"))

    env.process(proc(env))
    env.process(failer(env))
    env.run()
    assert caught == [(2.0, "bad")]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 5.0, "wakeup")]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_survives_interrupt_and_continues():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(10)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [15.0]


def test_yielding_already_processed_event_continues_immediately():
    env = Environment()
    log = []

    def proc(env):
        timeout = env.timeout(1, value="v")
        yield env.timeout(5)  # the first timeout fires meanwhile
        value = yield timeout
        log.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert log == [(5.0, "v")]


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_nested_processes():
    env = Environment()
    log = []

    def grandchild(env):
        yield env.timeout(1)
        return "gc"

    def child(env):
        value = yield env.process(grandchild(env))
        yield env.timeout(1)
        return value + "-c"

    def parent(env):
        value = yield env.process(child(env))
        log.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert log == [(2.0, "gc-c")]


def test_interrupt_while_waiting_on_condition():
    env = Environment()
    log = []

    def waiter(env):
        try:
            yield AllOf(env, [env.timeout(100), env.timeout(200)])
            log.append("completed")
        except Interrupt:
            log.append(("interrupted", env.now))

    def interrupter(env, victim):
        yield env.timeout(50)
        victim.interrupt()

    victim = env.process(waiter(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 50.0)]


def test_any_of_with_already_processed_child():
    env = Environment()
    log = []

    def proc(env):
        fast = env.timeout(1, value="fast")
        yield env.timeout(10)  # fast already fired and processed
        result = yield AnyOf(env, [fast, env.timeout(100, value="slow")])
        log.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert log == [(10.0, ["fast"])]


def test_nested_conditions():
    env = Environment()
    log = []

    def proc(env):
        inner = AnyOf(env, [env.timeout(30, value="a"),
                            env.timeout(60, value="b")])
        outer = yield AllOf(env, [inner, env.timeout(10, value="c")])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [30.0]


def test_urgent_priority_runs_first():
    env = Environment()
    order = []

    first = env.event()
    first.callbacks.append(lambda e: order.append("normal"))
    first._ok, first._value = True, None
    env.schedule(first, delay=5)

    second = env.event()
    second.callbacks.append(lambda e: order.append("urgent"))
    second._ok, second._value = True, None
    env.schedule(second, delay=5, priority=Environment.PRIORITY_URGENT)

    env.run()
    assert order == ["urgent", "normal"]


def test_process_return_none_by_default():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1)

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [None]
