"""Tests for the finite-capacity (queued) RPC server model."""

import pytest

from repro.net import RpcEndpoint, Transport, uniform_topology
from repro.sim import AllOf, Environment, RandomStreams


def make_pair(service_time_ms):
    env = Environment()
    topo = uniform_topology(2, one_way_ms=10.0, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=44))
    client = RpcEndpoint(env, transport, "client", 0)
    server = RpcEndpoint(env, transport, "server", 1,
                         service_time_ms=service_time_ms)
    return env, client, server


def test_negative_service_time_rejected():
    env = Environment()
    topo = uniform_topology(2)
    transport = Transport(env, topo, RandomStreams(seed=1))
    with pytest.raises(ValueError):
        RpcEndpoint(env, transport, "x", 0, service_time_ms=-1)


def test_zero_service_time_is_instant():
    env, client, server = make_pair(0.0)
    server.on("echo", lambda p, s: p)
    done = []

    def caller(env):
        value = yield client.call("server", "echo", 1)
        done.append((env.now, value))

    env.process(caller(env))
    env.run()
    # One ~20ms round trip, no service delay.
    assert done[0][0] < 25.0


def test_service_time_serializes_requests():
    env, client, server = make_pair(5.0)
    served = []
    server.on("work", lambda p, s: served.append(env.now) or p)

    def caller(env):
        calls = [client.call("server", "work", i) for i in range(4)]
        yield AllOf(env, calls)

    env.process(caller(env))
    env.run()
    # Requests arrive ~simultaneously but are served 5ms apart.
    gaps = [b - a for a, b in zip(served, served[1:])]
    assert all(gap == pytest.approx(5.0, abs=0.5) for gap in gaps)
    assert server.max_queue_depth >= 3


def test_overload_builds_queueing_delay():
    env, client, server = make_pair(10.0)
    finished = []
    server.on("work", lambda p, s: p)

    def caller(env, i):
        start = env.now
        yield client.call("server", "work", i)
        finished.append(env.now - start)

    def burst(env):
        # Offered load 1 msg/ms >> capacity 0.1 msg/ms.
        for i in range(50):
            env.process(caller(env, i))
            yield env.timeout(1.0)

    env.process(burst(env))
    env.run()
    assert len(finished) == 50
    # Later requests wait behind the queue: latency grows by roughly
    # the service-time deficit.
    assert max(finished) > 10 * min(finished)


def test_replies_also_pay_service_time():
    # The queued endpoint charges for every inbound message, including
    # responses it is waiting on (a server acting as a client, like a
    # record leader collecting phase2b votes).
    env = Environment()
    topo = uniform_topology(2, one_way_ms=10.0, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=45))
    busy = RpcEndpoint(env, transport, "busy", 0, service_time_ms=50.0)
    helper = RpcEndpoint(env, transport, "helper", 1)
    helper.on("help", lambda p, s: p)
    done = []

    def caller(env):
        value = yield busy.call("helper", "help", 1)
        done.append(env.now)

    env.process(caller(env))
    env.run()
    # Round trip ~20ms plus one 50ms service slot for the reply.
    assert done[0] == pytest.approx(70.0, abs=5.0)
