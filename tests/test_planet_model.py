"""Behavioural tests for the PLANET programming model (§3, §4.1).

These tests pin down the stage-block semantics of Figure 2/3: exactly
one stage block runs within the timeout, acceptance and completion
fire the right blocks at the right times, speculative commits obey the
threshold, and the finally callbacks deliver the apology path.
"""

import math
import random

import pytest

from repro.core import (
    FINISH_TX,
    AdmissionPolicy,
    CommitLikelihoodModel,
    DynamicPolicy,
    OracleLatencySource,
    PlanetSession,
    RemoteCallbackService,
    TxState,
)
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


class RejectAll(AdmissionPolicy):
    def decide(self, likelihood, rng):
        return False

    def describe(self):
        return "reject-all"


def make_env(n_dc=3, one_way=50.0, mastership="hash", seed=21, items=20):
    env = Environment()
    topo = uniform_topology(n_dc, one_way_ms=one_way, sigma=0.02)
    streams = RandomStreams(seed=seed)
    cluster = Cluster(env, topo, streams, mastership=mastership)
    cluster.load({f"item:{i}": 100 for i in range(items)})
    return env, cluster


def make_model(cluster, topo_samples=800):
    matrix = OracleLatencySource(cluster.topology, cluster.streams,
                                 samples=topo_samples).latency_matrix()
    model = CommitLikelihoodModel(
        matrix, cluster.mastership.leader_distribution())
    model.precompute()
    return model


def run_tx(env, session, writes, timeout_ms, threshold=None,
           with_accept=True, with_complete=True):
    """Wire a standard instrumented transaction; returns (tx, fired)."""
    fired = []
    tx = session.transaction(writes, timeout_ms=timeout_ms)
    tx.on_failure(lambda i: fired.append(("failure", i)))
    if with_accept:
        tx.on_accept(lambda i: fired.append(("accept", i)))
    if with_complete:
        tx.on_complete(lambda i: fired.append(("complete", i)),
                       threshold=threshold)
    tx.finally_callback(lambda i: fired.append(("finally", i)))
    return tx.execute(), fired


def stage_names(fired):
    return [name for name, _info in fired]


# ---------------------------------------------------------------- validation


def test_on_failure_required():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0)
    tx = session.transaction([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=300)
    with pytest.raises(ValueError, match="on_failure"):
        tx.execute()


def test_on_progress_exclusive_with_stages():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0)
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=300)
          .on_failure(lambda i: None)
          .on_progress(lambda i: None))
    with pytest.raises(ValueError, match="generalized"):
        tx.execute()


def test_bad_threshold_rejected():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0)
    tx = session.transaction([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=300)
    with pytest.raises(ValueError):
        tx.on_complete(lambda i: None, threshold=1.5)
    with pytest.raises(ValueError):
        tx.on_complete(lambda i: None, threshold=0.0)


def test_bad_timeout_rejected():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0)
    with pytest.raises(ValueError):
        session.transaction([WriteOp("item:1", Update.delta(-1))],
                            timeout_ms=0)


# ---------------------------------------------------------------- staged flow


def test_complete_fires_when_decided_before_timeout():
    env, cluster = make_env(one_way=20.0)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000)
    env.run()
    assert stage_names(fired) == ["complete", "finally"]
    complete_info = fired[0][1]
    assert complete_info.state is TxState.COMMITTED
    assert complete_info.success
    assert not complete_info.timed_out
    assert tx.stage_fired == "complete"
    assert not tx.spec_committed


def test_accept_fires_at_timeout_when_undecided():
    # Local leader -> fast acceptance; remote quorum -> slow decision.
    env, cluster = make_env(one_way=50.0, mastership=0)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=20)
    env.run()
    assert stage_names(fired) == ["accept", "finally"]
    accept_info = fired[0][1]
    assert accept_info.state is TxState.ACCEPTED
    assert accept_info.timed_out
    assert tx.stage_fired_ms == pytest.approx(tx.start_ms + 20)
    # The transaction still completed after the timeout (Assurance).
    finally_info = fired[1][1]
    assert finally_info.state is TxState.COMMITTED
    assert finally_info.timed_out


def test_failure_fires_at_timeout_before_acceptance():
    # Remote leader: the proposal ack itself takes a WAN round trip.
    env, cluster = make_env(one_way=50.0, mastership=1)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=20)
    env.run()
    assert stage_names(fired) == ["failure", "finally"]
    failure_info = fired[0][1]
    assert failure_info.state is TxState.UNKNOWN
    assert failure_info.timed_out
    # Uncertainty resolves later through the finally callback.
    assert fired[1][1].state is TxState.COMMITTED


def test_early_accept_without_on_complete():
    # Twitter pattern (Listing 4): onFailure + onAccept only; onAccept
    # must run at acceptance, not at the timeout.
    env, cluster = make_env(one_way=50.0, mastership=0)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000, with_complete=False)
    env.run()
    assert stage_names(fired)[0] == "accept"
    assert tx.stage_fired_ms - tx.start_ms < 100  # long before the timeout
    assert fired[0][1].state is TxState.ACCEPTED


def test_atm_pattern_failure_then_success_apology():
    # ATM (Listing 3): no onAccept; timeout -> onFailure even though
    # accepted; the remote finally callback reports the late commit.
    env, cluster = make_env(one_way=50.0, mastership=0)
    session = PlanetSession(cluster, "web", 0)
    apologies = []
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=20)
          .on_failure(lambda i: apologies.append(("failure", i.state)))
          .on_complete(lambda i: apologies.append(("complete", i.state)))
          .finally_callback_remote(
              lambda i: apologies.append(("remote", i.state, i.timed_out))))
    planet_tx = tx.execute()
    env.run()
    assert apologies[0] == ("failure", TxState.ACCEPTED)
    assert apologies[-1] == ("remote", TxState.COMMITTED, True)
    assert planet_tx.committed


def test_only_one_stage_block_fires():
    env, cluster = make_env(one_way=20.0)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000)
    env.run()
    stage_blocks = [n for n in stage_names(fired) if n != "finally"]
    assert len(stage_blocks) == 1


def test_infinite_timeout_allowed():
    env, cluster = make_env(one_way=20.0)
    session = PlanetSession(cluster, "web", 0)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=math.inf)
    env.run()
    assert stage_names(fired) == ["complete", "finally"]
    assert not fired[0][1].timed_out


# ---------------------------------------------------------------- speculation


def test_spec_commit_fires_immediately_at_high_likelihood():
    env, cluster = make_env(one_way=50.0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000, threshold=0.95)
    env.run()
    assert stage_names(fired) == ["complete", "finally"]
    assert fired[0][1].state is TxState.SPEC_COMMITTED
    assert tx.spec_committed
    assert tx.commit_response_ms < 10  # read + likelihood, no WAN wait
    assert tx.committed  # the real outcome confirmed the guess
    assert not tx.spec_incorrect
    assert fired[1][1].state is TxState.COMMITTED


def test_spec_commit_threshold_one_never_speculates():
    env, cluster = make_env(one_way=50.0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000, threshold=1.0)
    env.run()
    assert not tx.spec_committed
    assert fired[0][1].state is TxState.COMMITTED


def test_incorrect_spec_commit_is_apologized():
    env, cluster = make_env(one_way=50.0, mastership=0)
    model = make_model(cluster)
    rival = PlanetSession(cluster, "rival", 0)  # co-located with leader
    session = PlanetSession(cluster, "web", 1, model=model)  # remote
    fired = []

    def driver(env):
        # The rival grabs the record first; by the time our transaction
        # proposes, the conflict window is open but the arrival-rate
        # statistics barely register it, so we still speculate.
        (rival.transaction([WriteOp("item:1", Update.delta(-1))],
                           timeout_ms=math.inf)
         .on_failure(lambda i: None)).execute()
        yield env.timeout(5)
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=5_000)
              .on_failure(lambda i: fired.append(("failure", i.state)))
              .on_complete(lambda i: fired.append(("complete", i.state)),
                           threshold=0.9)
              .finally_callback(
                  lambda i: fired.append(("finally", i.state))))
        planet_tx = tx.execute()
        yield planet_tx.final_event
        assert planet_tx.spec_committed
        assert planet_tx.spec_incorrect

    env.process(driver(env))
    env.run()
    assert ("complete", TxState.SPEC_COMMITTED) in fired
    assert ("finally", TxState.ABORTED) in fired


def test_spec_commit_not_after_timeout():
    # Timeout fires before the likelihood ever reaches the threshold
    # (model absent until learned messages resolve, rate high).
    env, cluster = make_env(one_way=50.0, mastership=1)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    # Saturate the arrival rate so the initial likelihood is ~0.
    leader = cluster.leader_node("item:1")
    local = cluster.node_for(0, "item:1")
    for _ in range(2000):
        local.access_stats.record_access("item:1", env.now)
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=20, threshold=0.95)
    env.run()
    assert not tx.spec_committed
    assert stage_names(fired)[0] == "failure"


# ---------------------------------------------------------------- admission


def test_admission_rejection_short_circuits():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0, admission=RejectAll())
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000)
    env.run()
    assert tx.state is TxState.REJECTED
    assert tx.admitted is False
    assert stage_names(fired) == ["complete", "finally"]
    assert fired[0][1].state is TxState.REJECTED
    assert not fired[0][1].success
    # Nothing was proposed: no option traffic for this key.
    assert cluster.leader_node("item:1").proposals == 0
    assert session.tm.started == 0


def test_admission_rejection_without_on_complete_uses_failure():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0, admission=RejectAll())
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000, with_complete=False,
                       with_accept=False)
    env.run()
    assert stage_names(fired) == ["failure", "finally"]
    assert fired[0][1].state is TxState.REJECTED


def test_dynamic_policy_attempts_high_likelihood():
    env, cluster = make_env()
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model,
                            admission=DynamicPolicy(50))
    tx, fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                       timeout_ms=5_000)
    env.run()
    assert tx.admitted is True
    assert tx.committed


# ---------------------------------------------------------------- finally


def test_finally_callback_suppressed_by_crash():
    env, cluster = make_env(one_way=50.0)
    session = PlanetSession(cluster, "web", 0)
    local_calls = []
    remote_calls = []

    def driver(env):
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=20)
              .on_failure(lambda i: None)
              .finally_callback(lambda i: local_calls.append(i.state))
              .finally_callback_remote(lambda i: remote_calls.append(i.state)))
        tx.execute()
        yield env.timeout(30)
        session.crash()  # application server dies after the timeout

    env.process(driver(env))
    env.run()
    assert local_calls == []  # at-most-once: lost with the client
    assert remote_calls == [TxState.COMMITTED]  # at-least-once: survives


def test_remote_callback_duplicates_tolerated():
    env, cluster = make_env(one_way=20.0)
    service = RemoteCallbackService(env, cluster.streams,
                                    duplicate_prob=1.0)
    session = PlanetSession(cluster, "web", 0, remote_service=service)
    remote_calls = []
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_failure(lambda i: None)
          .finally_callback_remote(lambda i: remote_calls.append(i.state)))
    tx.execute()
    env.run()
    assert remote_calls == [TxState.COMMITTED, TxState.COMMITTED]


def test_final_event_and_closed_event():
    env, cluster = make_env(one_way=20.0)
    session = PlanetSession(cluster, "web", 0)
    order = []

    def driver(env):
        tx, _fired = run_tx(env, session,
                            [WriteOp("item:1", Update.delta(-1))],
                            timeout_ms=5_000)
        info = yield tx.closed_event
        order.append(("closed", info.stage))
        info = yield tx.final_event
        order.append(("final", info.state))

    env.process(driver(env))
    env.run()
    assert order == [("closed", "complete"),
                     ("final", TxState.COMMITTED)]


# ---------------------------------------------------------------- generalized


def test_on_progress_sees_state_changes_and_finishes():
    env, cluster = make_env(one_way=50.0, mastership=0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    seen = []

    def progress(info):
        seen.append((info.stage, info.state))
        if info.stage == "decided":
            return FINISH_TX
        return None

    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_progress(progress)
          .finally_callback(lambda i: seen.append(("finally", i.state))))
    planet_tx = tx.execute()
    env.run()
    stages = [stage for stage, _state in seen]
    assert stages[0] == "likelihood"
    assert "accepted" in stages
    assert "learned" in stages
    assert "decided" in stages
    assert stages[-1] == "finally"
    assert planet_tx.stage_fired == "progress"
    assert planet_tx.returned


def test_on_progress_timeout_event():
    env, cluster = make_env(one_way=50.0, mastership=1)
    session = PlanetSession(cluster, "web", 0)
    seen = []

    def progress(info):
        seen.append((info.stage, info.timed_out))
        if info.timed_out:
            return FINISH_TX
        return None

    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=20)
          .on_progress(progress))
    planet_tx = tx.execute()
    env.run()
    assert ("timeout", True) in seen
    assert planet_tx.returned


def test_user_defined_commit_via_on_progress():
    # §4.1.2: the developer redefines commit as "accepted" — control
    # returns at acceptance, long before the Paxos round settles.
    env, cluster = make_env(one_way=50.0, mastership=0)
    session = PlanetSession(cluster, "web", 0)

    def progress(info):
        if info.state is TxState.ACCEPTED:
            return FINISH_TX
        return None

    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_progress(progress))
    planet_tx = tx.execute()
    env.run()
    assert planet_tx.returned
    assert planet_tx.stage_fired_ms - planet_tx.start_ms < 50
    assert planet_tx.committed  # still completed underneath


# ---------------------------------------------------------------- bookkeeping


def test_likelihood_drops_to_zero_on_rejected_option():
    env, cluster = make_env(one_way=50.0, mastership=0)
    rival = PlanetSession(cluster, "rival", 0)
    session = PlanetSession(cluster, "web", 0)
    trace = []

    def driver(env):
        (rival.transaction([WriteOp("item:1", Update.delta(-1))],
                           timeout_ms=math.inf)
         .on_failure(lambda i: None)).execute()
        yield env.timeout(5)
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=5_000)
              .on_progress(lambda i: trace.append(
                  (i.stage, i.commit_likelihood))))
        planet_tx = tx.execute()
        yield planet_tx.final_event
        assert planet_tx.committed is False
        assert planet_tx.current_likelihood == 0.0

    env.process(driver(env))
    env.run()
    learned = [l for stage, l in trace if stage == "learned"]
    assert learned and learned[-1] == 0.0


def test_transactions_recorded_on_session():
    env, cluster = make_env(one_way=20.0)
    session = PlanetSession(cluster, "web", 0)
    for key in ("item:1", "item:2"):
        run_tx(env, session, [WriteOp(key, Update.delta(-1))],
               timeout_ms=5_000)
    env.run()
    assert len(session.transactions) == 2
    assert all(t.committed for t in session.transactions)


# ---------------------------------------------------------------- estimation


def test_estimate_commit_time_matches_measurement():
    env, cluster = make_env(one_way=50.0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    estimate = session.estimate_commit_time(
        [WriteOp("item:1", Update.delta(-1))], percentile=0.5)
    tx, _fired = run_tx(env, session, [WriteOp("item:1", Update.delta(-1))],
                        timeout_ms=math.inf)
    env.run()
    measured = tx.decided_ms - tx.start_ms
    # Estimate within a factor of ~1.5 of the observed commit latency.
    assert estimate == pytest.approx(measured, rel=0.5)


def test_estimate_commit_time_grows_with_percentile():
    env, cluster = make_env(one_way=50.0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    writes = [WriteOp("item:1", Update.delta(-1)),
              WriteOp("item:2", Update.delta(-1))]
    p50 = session.estimate_commit_time(writes, percentile=0.5)
    p99 = session.estimate_commit_time(writes, percentile=0.99)
    assert p99 >= p50 > 0


def test_estimate_commit_time_requires_model():
    env, cluster = make_env()
    session = PlanetSession(cluster, "web", 0)
    with pytest.raises(RuntimeError):
        session.estimate_commit_time([WriteOp("item:1", Update.delta(-1))])
    model = make_model(cluster)
    session.model = model
    with pytest.raises(ValueError):
        session.estimate_commit_time([])


def test_suggest_timeout_beats_actual_commits():
    env, cluster = make_env(one_way=50.0)
    model = make_model(cluster)
    session = PlanetSession(cluster, "web", 0, model=model)
    writes = [WriteOp("item:1", Update.delta(-1))]
    timeout = session.suggest_timeout(writes, confidence=0.99)
    finished = []
    for i in range(5):
        tx, fired = run_tx(env, session,
                           [WriteOp(f"item:{i}", Update.delta(-1))],
                           timeout_ms=timeout)
        finished.append((tx, fired))
    env.run()
    # With a 99%-confidence timeout, these uncontended commits all
    # complete inside it (the complete stage fired, not failure).
    for tx, fired in finished:
        assert stage_names(fired)[0] == "complete"
    with pytest.raises(ValueError):
        session.suggest_timeout(writes, margin=0.5)
