"""Tests for the staged-timeout baseline (Galera / Oracle RAC style)."""

import pytest

from repro.baseline import StagedOutcome, StagedTimeoutClient
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_cluster(one_way=50.0, mastership=0, seed=113):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=one_way, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      mastership=mastership)
    cluster.load({"item:1": 100})
    return env, cluster


def test_commit_inside_both_deadlines():
    env, cluster = make_cluster(one_way=20.0)
    client = StagedTimeoutClient(cluster, "app", 0)
    txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                         send_timeout_ms=1_000,
                         completion_timeout_ms=5_000)
    env.run()
    assert txn.app_outcome is StagedOutcome.COMMITTED
    assert txn.response_time_ms < 5_000


def test_send_timeout_when_leader_unreachable():
    env, cluster = make_cluster(mastership=1)
    cluster.transport.partition(0, 1)
    client = StagedTimeoutClient(cluster, "app", 0)
    txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                         send_timeout_ms=200,
                         completion_timeout_ms=5_000)
    env.run(until=10_000)
    assert txn.app_outcome is StagedOutcome.SEND_TIMEOUT
    assert txn.response_time_ms == pytest.approx(200.0)


def test_completion_timeout_distinguished_from_send():
    # Local leader: the ack is fast; the remote quorum is slower than
    # the completion deadline — the app learns "acked but unknown".
    env, cluster = make_cluster(one_way=50.0, mastership=0)
    client = StagedTimeoutClient(cluster, "app", 0)
    txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                         send_timeout_ms=20,
                         completion_timeout_ms=40)
    env.run(until=10_000)
    assert txn.app_outcome is StagedOutcome.COMPLETION_TIMEOUT
    # The critique made concrete: the transaction actually committed,
    # but the staged-timeout model never tells the application.
    assert txn.handle.result is not None and txn.handle.result.committed


def test_returned_event_carries_outcome():
    env, cluster = make_cluster(one_way=20.0)
    client = StagedTimeoutClient(cluster, "app", 0)
    seen = []

    def driver(env):
        txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                             send_timeout_ms=1_000,
                             completion_timeout_ms=5_000)
        outcome = yield txn.returned_event
        seen.append(outcome)

    env.process(driver(env))
    env.run()
    assert seen == [StagedOutcome.COMMITTED]


def test_staged_validation():
    env, cluster = make_cluster()
    client = StagedTimeoutClient(cluster, "app", 0)
    writes = [WriteOp("item:1", Update.delta(-1))]
    with pytest.raises(ValueError):
        client.execute(writes, send_timeout_ms=0,
                       completion_timeout_ms=100)
    with pytest.raises(ValueError):
        client.execute(writes, send_timeout_ms=500,
                       completion_timeout_ms=100)
