"""Tests for point-in-time (MVCC) reads over the version history."""

import pytest

from repro.core import PlanetSession
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Record, Update, WriteOp


def make_cluster(seed=93):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed))
    cluster.load({"item:1": 100})
    return env, cluster


# ---------------------------------------------------------------- record


def test_record_history_appended_on_commit():
    record = Record(key="k", value=10, version=1, history=[(0.0, 10)])
    record.add_pending("t1", Update.delta(-3))
    record.commit_pending("t1", now_ms=50.0)
    assert record.history == [(0.0, 10), (50.0, 7)]


def test_record_value_as_of():
    record = Record(key="k", value=10, version=1, history=[(0.0, 10)])
    for i, at in enumerate((100.0, 200.0, 300.0), start=1):
        record.add_pending(f"t{i}", Update.delta(-1))
        record.commit_pending(f"t{i}", now_ms=at)
    assert record.value_as_of(50.0) == (10, 3)
    assert record.value_as_of(100.0) == (9, 2)
    assert record.value_as_of(250.0) == (8, 1)
    assert record.value_as_of(1_000.0) == (7, 0)


def test_record_history_is_bounded():
    record = Record(key="k", value=0, version=1, history=[(0.0, 0)])
    for i in range(1, 50):
        record.add_pending(f"t{i}", Update.delta(1))
        record.commit_pending(f"t{i}", now_ms=float(i))
    assert len(record.history) == Record.HISTORY_KEEP
    # Asking before the retained horizon degrades to the oldest kept.
    value, newer = record.value_as_of(0.0)
    assert value == record.history[0][1]


def test_record_without_history_returns_current():
    record = Record(key="k", value=42, version=1)
    assert record.value_as_of(0.0) == (42, 0)


# ---------------------------------------------------------------- end to end


def test_snapshot_read_sees_the_past():
    env, cluster = make_cluster()
    session = PlanetSession(cluster, "web", 0)
    observations = {}

    def driver(env):
        tx = (session.transaction([WriteOp("item:1", Update.delta(-10))],
                                  timeout_ms=5_000)
              .on_failure(lambda i: None))
        planet_tx = tx.execute()
        yield planet_tx.final_event
        assert planet_tx.committed
        yield env.timeout(500)  # visibility settled locally
        write_visible_at = env.now
        now_read = yield session.read(["item:1"])
        past_read = yield session.read(["item:1"], as_of_ms=1.0)
        observations["now"] = now_read["item:1"].value
        observations["past"] = past_read["item:1"].value

    env.process(driver(env))
    env.run()
    assert observations == {"now": 90, "past": 100}


def test_snapshot_read_multiple_keys_same_timestamp():
    env, cluster = make_cluster()
    cluster.load({"item:2": 200})
    session = PlanetSession(cluster, "web", 0)
    seen = {}

    def driver(env):
        first = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                     timeout_ms=5_000)
                 .on_failure(lambda i: None)).execute()
        yield first.final_event
        yield env.timeout(500)
        checkpoint = env.now
        second = (session.transaction([WriteOp("item:2", Update.delta(-2))],
                                      timeout_ms=5_000)
                  .on_failure(lambda i: None)).execute()
        yield second.final_event
        yield env.timeout(500)
        snap = yield session.read(["item:1", "item:2"],
                                  as_of_ms=checkpoint)
        seen.update({key: reply.value for key, reply in snap.items()})

    env.process(driver(env))
    env.run()
    # At the checkpoint, the first write is visible, the second is not.
    assert seen == {"item:1": 99, "item:2": 200}


def test_snapshot_read_cannot_read_the_future():
    env, cluster = make_cluster()
    session = PlanetSession(cluster, "web", 0)
    with pytest.raises(ValueError):
        session.read(["item:1"], as_of_ms=1e12)


def test_snapshot_read_version_reflects_offset():
    env, cluster = make_cluster()
    session = PlanetSession(cluster, "web", 0)
    versions = {}

    def driver(env):
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=5_000)
              .on_failure(lambda i: None)).execute()
        yield tx.final_event
        yield env.timeout(500)
        now_read = yield session.read(["item:1"])
        past_read = yield session.read(["item:1"], as_of_ms=1.0)
        versions["now"] = now_read["item:1"].version
        versions["past"] = past_read["item:1"].version

    env.process(driver(env))
    env.run()
    assert versions["now"] == versions["past"] + 1
