"""Unit tests for ballots, acceptors, and phase-2 rounds."""

import pytest

from repro.net import RpcEndpoint, Transport, uniform_topology
from repro.paxos import (
    AcceptorState,
    Ballot,
    PaxosRound,
    Phase2a,
    handle_phase2a,
)
from repro.paxos.round import PaxosRoundTimeout
from repro.sim import Environment, RandomStreams


# ---------------------------------------------------------------- ballots


def test_ballot_ordering():
    assert Ballot(1, "a") < Ballot(2, "a")
    assert Ballot(1, "a") < Ballot(1, "b")
    assert Ballot(2, "a") > Ballot(1, "z")
    assert Ballot(1, "a") == Ballot(1, "a")


def test_ballot_next():
    ballot = Ballot(3, "a")
    assert ballot.next("b") == Ballot(4, "b")
    assert ballot < ballot.next("a")


# ---------------------------------------------------------------- acceptor


def test_acceptor_accepts_first_ballot():
    state = AcceptorState()
    vote = handle_phase2a(state, Phase2a("k", 1, Ballot(0, "l"), "v"))
    assert vote.accepted
    assert state.accepted[1] == (Ballot(0, "l"), "v")


def test_acceptor_rejects_lower_ballot():
    state = AcceptorState()
    handle_phase2a(state, Phase2a("k", 1, Ballot(5, "l"), "v"))
    vote = handle_phase2a(state, Phase2a("k", 2, Ballot(1, "m"), "w"))
    assert not vote.accepted
    assert vote.promised == Ballot(5, "l")
    assert 2 not in state.accepted


def test_acceptor_accepts_equal_ballot():
    state = AcceptorState()
    handle_phase2a(state, Phase2a("k", 1, Ballot(5, "l"), "v"))
    vote = handle_phase2a(state, Phase2a("k", 2, Ballot(5, "l"), "w"))
    assert vote.accepted


def test_acceptor_highest_seq():
    state = AcceptorState()
    assert state.highest_accepted_seq() == -1
    handle_phase2a(state, Phase2a("k", 3, Ballot(0, "l"), "v"))
    assert state.highest_accepted_seq() == 3


# ---------------------------------------------------------------- rounds


def _round_fixture(n_replicas=5, accept=None):
    """A leader endpoint plus n acceptor endpoints with canned votes."""
    env = Environment()
    topo = uniform_topology(n_replicas + 1, one_way_ms=10.0, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=11))
    leader = RpcEndpoint(env, transport, "leader", 0)
    accept = accept if accept is not None else [True] * n_replicas
    replicas = []
    for i, vote_yes in enumerate(accept):
        endpoint = RpcEndpoint(env, transport, f"acceptor{i}", i + 1)
        state = AcceptorState()

        def handler(message, src, state=state, vote_yes=vote_yes):
            vote = handle_phase2a(state, message)
            if not vote_yes:
                return type(vote)(key=vote.key, seq=vote.seq,
                                  ballot=vote.ballot, accepted=False,
                                  promised=vote.ballot)
            return vote

        endpoint.on("phase2a", handler)
        replicas.append(endpoint.address)
    return env, leader, replicas


def test_round_wins_with_unanimous_accepts():
    env, leader, replicas = _round_fixture()
    phase2a = Phase2a("k", 1, Ballot(0, "leader"), "opt")
    round_ = PaxosRound(env, leader, replicas, phase2a, quorum=3)
    outcome = []

    def waiter(env):
        won = yield round_.result
        outcome.append((env.now, won))

    env.process(waiter(env))
    env.run()
    assert outcome and outcome[0][1] is True
    # Decided after one round trip (~20ms), not after the stragglers.
    assert outcome[0][0] < 25.0


def test_round_loses_with_majority_rejects():
    env, leader, replicas = _round_fixture(
        n_replicas=5, accept=[False, False, False, True, True])
    phase2a = Phase2a("k", 1, Ballot(0, "leader"), "opt")
    round_ = PaxosRound(env, leader, replicas, phase2a, quorum=3)
    outcome = []

    def waiter(env):
        won = yield round_.result
        outcome.append(won)

    env.process(waiter(env))
    env.run()
    assert outcome == [False]


def test_round_decides_at_exact_quorum_boundary():
    env, leader, replicas = _round_fixture(
        n_replicas=5, accept=[True, True, True, False, False])
    phase2a = Phase2a("k", 1, Ballot(0, "leader"), "opt")
    round_ = PaxosRound(env, leader, replicas, phase2a, quorum=3)
    outcome = []

    def waiter(env):
        won = yield round_.result
        outcome.append(won)

    env.process(waiter(env))
    env.run()
    assert outcome == [True]


def test_round_timeout_fails_result():
    env, leader, replicas = _round_fixture(n_replicas=3)
    # Cut off all acceptors so no phase2b ever returns.
    for dc in range(1, 4):
        leader.transport.partition(0, dc)
    phase2a = Phase2a("k", 1, Ballot(0, "leader"), "opt")
    round_ = PaxosRound(env, leader, replicas, phase2a, quorum=2,
                        timeout_ms=100.0)
    caught = []

    def waiter(env):
        try:
            yield round_.result
        except PaxosRoundTimeout:
            caught.append(env.now)

    env.process(waiter(env))
    env.run()
    assert caught == [100.0]


def test_round_quorum_validation():
    env, leader, replicas = _round_fixture(n_replicas=3)
    phase2a = Phase2a("k", 1, Ballot(0, "leader"), "opt")
    with pytest.raises(ValueError):
        PaxosRound(env, leader, replicas, phase2a, quorum=4)
    with pytest.raises(ValueError):
        PaxosRound(env, leader, replicas, phase2a, quorum=0)
