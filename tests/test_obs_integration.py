"""End-to-end tests of the observability layer.

Three contracts are pinned here:

* **zero perturbation** — installing an :class:`ObsSession` never
  changes what the simulation does (history digests byte-identical
  with and without it, no extra rng draws);
* **determinism** — two runs of the same seed produce byte-identical
  span trees and metric dumps (golden-pinned on the capture version);
* **zero cost** — with no registry installed the kernel/transport hot
  loops run the same inlined fast paths as before the layer existed.
"""

import json
import sys
import time

import pytest

from repro.check.runner import CheckConfig, run_check
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs import STAGES, ObsSession, chrome_trace, stage_breakdown
from repro.obs.record import artifact_digests
from repro.sim import Environment

CHECK_CONFIG = CheckConfig(seed=7, n_txns=20, n_faults=4)

#: Captured on CPython 3.11 (same caveat as the history goldens: the
#: rng variate algorithms are only promised stable within a feature
#: release, and span timestamps derive from them).  Recaptured when
#: protocol timeouts moved to the cancelable timer wheel: histories
#: are byte-identical, but runs quiesce earlier (dead timers no longer
#: hold the clock) and ``sim.events`` no longer counts their churn.
GOLDEN_OBS_DIGESTS = {
    7: ("ef13a34baa605cadfe46a54d1b34f9214083e4d5d28f8ee3521320e5fd3ccd7f",
        "dc81edee66e884ec72025fceac9a9a50ef4fadd7ed706203a438ee4eb87bf457"),
    23: ("417d45d069b40a06f389c5aadb056012aa4f78eca7c7d555b2a5b0e0fb12db0a",
         "bf5ceb954ca0656cf42527981cfb120cb15c85d3a95cce07d832fe554b673f00"),
}

_on_capture_version = pytest.mark.skipif(
    sys.version_info[:2] != (3, 11),
    reason="golden digests captured on CPython 3.11")


def _figure_result():
    config = ExperimentConfig(
        name="obs-acceptance", seed=1234, system="planet",
        topology="ec2", n_items=2_000, hotspot_size=50, rate_tps=80.0,
        oracle_samples=400, warmup_ms=500.0, duration_ms=2_000.0,
        drain_ms=1_500.0, observe=True)
    return Experiment(config).run()


# -- zero perturbation ------------------------------------------------------

def test_observe_does_not_change_history_digest():
    plain = run_check(CHECK_CONFIG)
    observed = run_check(CHECK_CONFIG, observe=True)
    assert plain.history.digest() == observed.history.digest()
    assert plain.stats == observed.stats
    assert observed.obs is not None
    assert observed.obs["meta"]["source"] == "check"


# -- determinism ------------------------------------------------------------

def test_same_seed_gives_identical_obs_artifacts():
    first = run_check(CHECK_CONFIG, observe=True)
    second = run_check(CHECK_CONFIG, observe=True)
    assert artifact_digests(first.obs) == artifact_digests(second.obs)


@_on_capture_version
def test_obs_digests_match_goldens():
    for seed, (span_digest, metric_digest) in GOLDEN_OBS_DIGESTS.items():
        result = run_check(
            CheckConfig(seed=seed, n_txns=20, n_faults=4), observe=True)
        digests = artifact_digests(result.obs)
        assert digests["spans"] == span_digest, f"seed {seed} spans drifted"
        assert digests["metrics"] == metric_digest, \
            f"seed {seed} metrics drifted"


# -- acceptance: the stitched stage chain -----------------------------------

def test_figure_run_exports_full_stage_chain():
    result = _figure_result()
    assert result.obs is not None
    spans = result.obs["spans"]
    breakdowns = stage_breakdown(spans)
    committed = [b for b in breakdowns if b.committed and b.complete]
    assert committed, "no committed transaction in the acceptance run"
    # At least one committed transaction shows all five stages
    # stitched across >= 3 nodes with the breakdown summing to e2e.
    best = max(committed, key=lambda b: len(b.nodes))
    assert set(best.stage_ms) == set(STAGES)
    assert len(best.nodes) >= 3
    for tx in committed:
        assert tx.stage_sum_ms == pytest.approx(tx.e2e_ms, abs=1.0)
    # The trace JSON is valid Chrome trace-event format.
    trace = chrome_trace(spans, label="acceptance")
    assert trace["traceEvents"], "empty trace export"
    payload = json.dumps(trace)
    assert json.loads(payload)["displayTimeUnit"] == "ms"
    # Metrics recorded protocol activity end to end.
    counters = result.obs["metrics"]["counters"]
    assert counters["tx.started"][""] >= len(breakdowns)
    assert "transport.delivered" in counters
    assert "storage.options" in counters
    assert "paxos.rounds" in counters


# -- zero cost --------------------------------------------------------------

def _kernel_seconds(observe: bool, n_events: int = 30_000) -> float:
    env = Environment()
    if observe:
        ObsSession(spans=False).install(env)

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    start = time.perf_counter()
    env.run()
    return time.perf_counter() - start


def test_uninstrumented_kernel_skips_the_metered_loop(monkeypatch):
    def boom(self, until=None):
        raise AssertionError("fast path must not call _run_instrumented")

    def one_tick(env):
        yield env.timeout(1.0)

    monkeypatch.setattr(Environment, "_run_instrumented", boom)
    env = Environment()
    env.process(one_tick(env))
    env.run()  # fast loop; boom not reached
    instrumented = Environment()
    ObsSession(spans=False).install(instrumented)
    instrumented.process(one_tick(instrumented))
    with pytest.raises(AssertionError):
        instrumented.run()


def test_kernel_zero_cost_band():
    off = min(_kernel_seconds(False) for _ in range(3))
    on = min(_kernel_seconds(True) for _ in range(3))
    # The uninstrumented path does strictly less work than the metered
    # one; allow a generous noise band so CI machines never flake.
    assert off <= on * 1.25, (
        f"no-registry kernel run ({off:.4f}s) slower than instrumented "
        f"({on:.4f}s) beyond the 25% band")


def test_metered_loop_counts_events():
    env = Environment()
    session = ObsSession(spans=False)
    session.install(env)

    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    assert session.registry.counter_value("sim.events") >= 10.0


# -- CLI --------------------------------------------------------------------

def test_obs_cli_record_export_breakdown_top(tmp_path, capsys):
    from repro.obs.__main__ import main

    artifact = tmp_path / "run.obs.json"
    assert main(["record", "--check-seed", "7", "--txns", "15",
                 "--out", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "span digest:" in out and "metric digest:" in out

    assert main(["export", str(artifact)]) == 0
    exported = tmp_path / "run.perfetto.json"
    assert exported.exists()
    trace = json.loads(exported.read_text())
    assert trace["traceEvents"]
    capsys.readouterr()

    assert main(["breakdown", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "txid" in out and "admission_ms" in out

    assert main(["top", str(artifact), "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "e2e_ms" in out


def test_obs_cli_record_requires_exactly_one_source(tmp_path, capsys):
    from repro.obs.__main__ import main

    assert main(["record"]) == 2
    assert main(["record", "--check-seed", "1",
                 "--figure-seed", "2"]) == 2


def test_fuzz_failure_artifact_roundtrip(tmp_path):
    """The fuzz CLI's obs re-run: observe=True on a replayed schedule
    reproduces the same history and yields an exportable artifact."""
    from repro.check.__main__ import _save_obs

    result = run_check(CHECK_CONFIG)
    path = _save_obs(str(tmp_path), result)
    assert path is not None and path.endswith("seed-7.obs.json")
    artifact = json.loads(open(path).read())
    assert artifact["spans"]
    assert artifact["meta"]["source"] == "check"
