"""Failure-injection tests: partitions, message loss, client crashes.

These exercise the guarantees PLANET makes *because* failures happen:
the Two Generals' uncertainty window (onFailure), the not-be-lost
promise of onAccept, round timeouts releasing conflict windows, and
the at-most-once / at-least-once split of the finally callbacks.
"""

import math

import pytest

from repro.core import PlanetSession, TxState
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_cluster(one_way=20.0, mastership="hash", seed=77,
                 round_timeout_ms=None):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=one_way, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      mastership=mastership,
                      round_timeout_ms=round_timeout_ms)
    cluster.load({f"item:{i}": 100 for i in range(5)})
    return env, cluster


# ---------------------------------------------------------------- partitions


def test_partitioned_client_reaches_on_failure():
    # The client's DC is cut off from the leader's: the proposal never
    # arrives, nothing is known at the timeout -> onFailure, and the
    # transaction never decides (no false finally).
    env, cluster = make_cluster(mastership=1)
    cluster.transport.partition(0, 1)
    session = PlanetSession(cluster, "web", 0)
    fired = []
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=200)
     .on_failure(lambda i: fired.append(("failure", i.state)))
     .on_accept(lambda i: fired.append(("accept", i.state)))
     .finally_callback(lambda i: fired.append(("finally", i.state)))
     ).execute()
    env.run(until=5_000)
    assert fired == [("failure", TxState.UNKNOWN)]


def test_partition_heal_lets_transaction_complete():
    # Reads are local, so gate them past the partition; the proposal
    # is dropped while the WAN is cut, but a retry after heal works.
    env, cluster = make_cluster(mastership=1)
    session = PlanetSession(cluster, "web", 0)
    outcomes = []

    def driver(env):
        cluster.transport.partition(0, 1)
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=200)
              .on_failure(lambda i: outcomes.append(("first", i.state))))
        first = tx.execute()
        yield env.timeout(1_000)
        cluster.transport.heal(0, 1)
        retry = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                     timeout_ms=2_000)
                 .on_failure(lambda i: outcomes.append(("retry-fail",
                                                        i.state)))
                 .on_complete(lambda i: outcomes.append(("retry",
                                                         i.state))))
        retry_tx = retry.execute()
        yield retry_tx.final_event

    env.process(driver(env))
    env.run(until=10_000)
    assert ("first", TxState.UNKNOWN) in outcomes
    assert ("retry", TxState.COMMITTED) in outcomes


def test_quorum_survives_one_partitioned_replica():
    # 3 replicas, majority 2: cutting one non-leader DC off the leader
    # must not block commits (Paxos availability).
    env, cluster = make_cluster(mastership=0)
    leader_dc = 0
    cluster.transport.partition(leader_dc, 2)
    session = PlanetSession(cluster, "web", 0)
    done = []
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=math.inf)
     .on_failure(lambda i: None)
     .on_complete(lambda i: done.append(i.state))
     ).execute()
    env.run(until=5_000)
    assert done == [TxState.COMMITTED]
    # The partitioned replica missed the option and the visibility,
    # so its copy is stale — that is expected with a majority quorum.
    assert cluster.read_value("item:1", dc=0) == 99


def test_minority_leader_with_round_timeout_aborts_cleanly():
    # The leader is cut off from BOTH other DCs: no quorum is possible.
    # With a round timeout configured, the leader reports the option as
    # rejected, the transaction aborts, and the conflict window clears.
    env, cluster = make_cluster(mastership=0, round_timeout_ms=1_000)
    cluster.transport.partition(0, 1)
    cluster.transport.partition(0, 2)
    session = PlanetSession(cluster, "web", 0)
    outcomes = []
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=math.inf)
     .on_failure(lambda i: None)
     .on_complete(lambda i: outcomes.append(i.state))
     ).execute()
    env.run(until=10_000)
    assert outcomes == [TxState.ABORTED]
    leader = cluster.leader_node("item:1")
    assert not leader.records["item:1"].has_pending_option


def test_wedged_option_blocks_until_timeout_releases_it():
    env, cluster = make_cluster(mastership=0, round_timeout_ms=500)
    cluster.transport.partition(0, 1)
    cluster.transport.partition(0, 2)
    session = PlanetSession(cluster, "web", 0)
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=math.inf)
     .on_failure(lambda i: None)).execute()
    env.run(until=100)
    leader = cluster.leader_node("item:1")
    assert leader.records["item:1"].has_pending_option  # wedged window
    env.run(until=2_000)
    assert not leader.records["item:1"].has_pending_option  # released


# ---------------------------------------------------------------- message loss


def test_lossy_link_still_commits_through_quorum():
    # 100% loss toward one replica behaves like a partitioned replica:
    # the majority still decides.
    env, cluster = make_cluster(mastership=0)
    cluster.transport.set_drop_probability(0, 2, 1.0)
    cluster.transport.set_drop_probability(2, 0, 1.0)
    session = PlanetSession(cluster, "web", 0)
    done = []
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=math.inf)
     .on_failure(lambda i: None)
     .on_complete(lambda i: done.append(i.state))).execute()
    env.run(until=5_000)
    assert done == [TxState.COMMITTED]


def test_random_loss_many_transactions_invariants_hold():
    # 10% loss everywhere + round timeouts: some transactions abort,
    # but no value diverges beyond missed (stale) replicas and every
    # leader window is eventually released.
    env, cluster = make_cluster(mastership="hash", seed=5,
                                round_timeout_ms=2_000)
    for a in range(3):
        for b in range(3):
            if a != b:
                cluster.transport.set_drop_probability(a, b, 0.10)
    session = PlanetSession(cluster, "web", 0)
    txs = []

    def driver(env):
        for i in range(30):
            tx = (session.transaction(
                      [WriteOp(f"item:{i % 5}", Update.delta(-1))],
                      timeout_ms=math.inf)
                  .on_failure(lambda info: None))
            txs.append(tx.execute())
            yield env.timeout(300)

    env.process(driver(env))
    env.run(until=60_000)
    decided = [t for t in txs if t.committed is not None]
    # Dropped propose/learned messages leave some transactions forever
    # undecided (the Two Generals' residue); round timeouts resolve the
    # rest.
    assert len(decided) >= 18
    # Invariant: every *decided* transaction's conflict window is
    # released everywhere.  (An undecided transaction may wedge its
    # record: its learned/visibility message was lost, and no safe
    # unilateral cleanup exists — the paper's uncertainty residue.)
    decided_txids = {t.handle.txid for t in decided}
    for nodes in cluster.nodes.values():
        for node in nodes:
            for key, record in node.records.items():
                for txid in record.pending:
                    assert txid not in decided_txids


# ---------------------------------------------------------------- crashes


def test_crash_before_completion_loses_local_keeps_remote():
    env, cluster = make_cluster(one_way=50.0, mastership=1)
    session = PlanetSession(cluster, "web", 0)
    local, remote = [], []

    def driver(env):
        (session.transaction([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=20)
         .on_failure(lambda i: None)
         .finally_callback(lambda i: local.append(i.state))
         .finally_callback_remote(lambda i: remote.append(i.state))
         ).execute()
        yield env.timeout(25)  # crash right after the timeout
        session.crash()

    env.process(driver(env))
    env.run(until=10_000)
    assert local == []
    assert remote == [TxState.COMMITTED]
    # The database itself is unaffected by the client crash.
    assert cluster.read_value("item:1", dc=1) == 99
