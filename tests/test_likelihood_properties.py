"""Property-style tests for the commit-likelihood model (§5.1.2).

Rather than pinning single values, these check the shape of the model:
likelihoods are probabilities, they decay monotonically in conflict
pressure (arrival rate, processing time w, transaction size), and the
zero-pressure limit is certainty.
"""

import pytest

from repro.core.histograms import Pmf
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix

N_DC = 3
BIN_MS = 2.0
N_BINS = 256

RATES = [0.0, 1e-4, 5e-4, 1e-3, 5e-3, 0.02, 0.1, 0.5]
WAITS = [0.0, 10.0, 50.0, 200.0, 1_000.0]


def make_model(rtt_ms: float = 40.0, quorum=None,
               sizes=None, **fast_knobs) -> CommitLikelihoodModel:
    rtts = {(a, b): Pmf.point(rtt_ms, BIN_MS, N_BINS)
            for a in range(N_DC) for b in range(a + 1, N_DC)}
    matrix = LatencyMatrix(N_DC, rtts, BIN_MS, N_BINS)
    model = CommitLikelihoodModel(
        matrix, leader_distribution=[1.0 / N_DC] * N_DC,
        quorum=quorum, size_distribution=sizes, **fast_knobs)
    model.precompute()
    return model


@pytest.fixture(scope="module")
def model() -> CommitLikelihoodModel:
    return make_model()


def all_cells():
    return [(client, leader) for client in range(N_DC)
            for leader in range(N_DC)]


def test_likelihood_is_a_probability(model):
    for client, leader in all_cells():
        for rate in RATES:
            for w_ms in WAITS:
                likelihood = model.record_likelihood(client, leader,
                                                     rate, w_ms)
                assert 0.0 <= likelihood <= 1.0, \
                    (client, leader, rate, w_ms, likelihood)


def test_zero_arrival_rate_means_certain_commit(model):
    for client, leader in all_cells():
        assert model.record_likelihood(client, leader, 0.0) \
            == pytest.approx(1.0)
        assert model.record_likelihood(client, leader, 0.0,
                                       w_ms=10_000.0) \
            == pytest.approx(1.0)


def test_monotone_non_increasing_in_arrival_rate(model):
    for client, leader in all_cells():
        previous = 1.0 + 1e-12
        for rate in RATES:
            likelihood = model.record_likelihood(client, leader, rate)
            assert likelihood <= previous + 1e-12, (client, leader, rate)
            previous = likelihood


def test_monotone_non_increasing_in_processing_time(model):
    rate = 1e-3
    for client, leader in all_cells():
        previous = 1.0 + 1e-12
        for w_ms in WAITS:
            likelihood = model.record_likelihood(client, leader, rate,
                                                 w_ms)
            assert likelihood <= previous + 1e-12, (client, leader, w_ms)
            previous = likelihood


def test_positive_pressure_costs_something(model):
    # A busy record during a nonzero window cannot be a sure commit.
    likelihood = model.record_likelihood(0, 1, 0.05)
    assert likelihood < 1.0


def test_transaction_likelihood_is_product_of_records(model):
    records = [(0, 1e-3), (1, 2e-3), (2, 5e-4)]
    product = 1.0
    for leader, rate in records:
        product *= model.record_likelihood(0, leader, rate)
    assert model.transaction_likelihood(0, records) \
        == pytest.approx(product)
    # More records can only lower the likelihood.
    assert model.transaction_likelihood(0, records) \
        <= model.transaction_likelihood(0, records[:1]) + 1e-12


def test_larger_quorum_lengthens_the_window():
    fast = make_model(quorum=1)
    slow = make_model(quorum=N_DC)
    rate = 2e-3
    for client, leader in all_cells():
        assert slow.record_likelihood(client, leader, rate) \
            <= fast.record_likelihood(client, leader, rate) + 1e-12


def test_bigger_previous_transactions_lower_the_likelihood():
    small = make_model(sizes={1: 1.0})
    large = make_model(sizes={8: 1.0})
    rate = 2e-3
    for client, leader in all_cells():
        assert large.record_likelihood(client, leader, rate) \
            <= small.record_likelihood(client, leader, rate) + 1e-12


def test_farther_topology_lowers_the_likelihood():
    near = make_model(rtt_ms=20.0)
    far = make_model(rtt_ms=200.0)
    rate = 2e-3
    for client, leader in all_cells():
        assert far.record_likelihood(client, leader, rate) \
            <= near.record_likelihood(client, leader, rate) + 1e-12


# -- fast ballots (⌈3N/4⌉ quorum + collision-recovery branch) ----------------


def test_fast_likelihood_is_a_probability():
    model = make_model(mode="fast", collision_probability=0.1)
    for client, leader in all_cells():
        for rate in RATES:
            for w_ms in (0.0, 50.0, 1_000.0):
                likelihood = model.record_likelihood(client, leader,
                                                     rate, w_ms)
                assert 0.0 <= likelihood <= 1.0, \
                    (client, leader, rate, w_ms, likelihood)


def test_fast_with_majority_quorum_and_no_collisions_is_classic():
    # At N=3 the default fast quorum ⌈9/4⌉ = 3 exceeds the classic
    # majority of 2 — but forcing the fast quorum down to the
    # majority with p=0 must reproduce the classic chain exactly:
    # the mode knob alone changes no math.
    classic = make_model()
    degraded = make_model(mode="fast", fast_quorum=2,
                          collision_probability=0.0)
    rate = 2e-3
    for client, leader in all_cells():
        for w_ms in (0.0, 50.0):
            assert degraded.record_likelihood(client, leader, rate, w_ms) \
                == classic.record_likelihood(client, leader, rate, w_ms)


def test_larger_fast_quorum_lengthens_the_window():
    rate = 2e-3
    previous = None
    for fast_quorum in (1, 2, 3):
        model = make_model(mode="fast", fast_quorum=fast_quorum)
        likelihoods = [model.record_likelihood(client, leader, rate)
                       for client, leader in all_cells()]
        if previous is not None:
            for tighter, looser in zip(likelihoods, previous):
                assert tighter <= looser + 1e-12
        previous = likelihoods


def test_fast_likelihood_decays_with_rtt():
    near = make_model(rtt_ms=20.0, mode="fast",
                      collision_probability=0.05)
    far = make_model(rtt_ms=200.0, mode="fast",
                     collision_probability=0.05)
    rate = 2e-3
    for client, leader in all_cells():
        assert far.record_likelihood(client, leader, rate) \
            <= near.record_likelihood(client, leader, rate) + 1e-12


def test_collision_probability_decays_the_likelihood():
    # Each extra point of collision probability mixes in more of the
    # longer recovery branch, so the likelihood is non-increasing in p
    # (strictly decreasing under positive pressure).
    rate = 2e-3
    previous = None
    for p in (0.0, 0.1, 0.5, 1.0):
        model = make_model(mode="fast", collision_probability=p)
        likelihoods = [model.record_likelihood(client, leader, rate)
                       for client, leader in all_cells()]
        if previous is not None:
            for riskier, safer in zip(likelihoods, previous):
                assert riskier <= safer + 1e-12
        previous = likelihoods
    certain = make_model(mode="fast", collision_probability=0.0)
    colliding = make_model(mode="fast", collision_probability=0.5)
    assert colliding.record_likelihood(0, 1, rate) \
        < certain.record_likelihood(0, 1, rate)


def test_collision_probability_is_inert_at_zero_pressure():
    model = make_model(mode="fast", collision_probability=0.9)
    for client, leader in all_cells():
        assert model.record_likelihood(client, leader, 0.0) \
            == pytest.approx(1.0)


def test_fast_refresh_matches_a_cold_precompute():
    # The recovery mixture couples every cell to the classic quorum
    # chain, so a dirty link under p > 0 forces the exact full
    # rebuild — which must agree with a from-scratch model.
    def matrix(cross_ms):
        rtts = {(a, b): Pmf.point(cross_ms if (a, b) == (0, 1) else 40.0,
                                  BIN_MS, N_BINS)
                for a in range(N_DC) for b in range(a + 1, N_DC)}
        return LatencyMatrix(N_DC, rtts, BIN_MS, N_BINS)

    knobs = dict(leader_distribution=[1.0 / N_DC] * N_DC,
                 mode="fast", collision_probability=0.2)
    model = CommitLikelihoodModel(matrix(40.0), **knobs)
    model.precompute()
    changed = model.refresh(
        rtt_updates={(0, 1): Pmf.point(80.0, BIN_MS, N_BINS),
                     (1, 0): Pmf.point(80.0, BIN_MS, N_BINS)})
    assert changed == set(all_cells())  # p > 0 rebuilds every cell
    cold = CommitLikelihoodModel(matrix(80.0), **knobs)
    cold.precompute()
    for client, leader in all_cells():
        assert model.record_likelihood(client, leader, 2e-3) \
            == pytest.approx(cold.record_likelihood(client, leader, 2e-3),
                             abs=1e-12)
    # A no-op refresh stays a no-op even under the fast mixture.
    assert model.refresh() == set()


def test_fast_knobs_are_validated():
    with pytest.raises(ValueError):
        make_model(mode="turbo")
    with pytest.raises(ValueError):
        make_model(mode="fast", collision_probability=1.5)
    with pytest.raises(ValueError):
        make_model(mode="fast", fast_quorum=N_DC + 1)
    with pytest.raises(ValueError):
        make_model(mode="classic", fast_quorum=2)
