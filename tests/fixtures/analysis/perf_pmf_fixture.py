# repro: module=repro.core.fixture_pmf
"""Deliberate PERF002 violations: raw spectral calls off the Pmf layer."""

import numpy as np
from numpy import convolve as raw_convolve
from numpy import fft
from numpy.fft import rfft


def hand_rolled_window(a, b):
    full = np.convolve(a, b)  # expect[PERF002]
    return full[: len(a)]


def aliased_convolution(a, b):
    return raw_convolve(a, b)  # expect[PERF002]


def spectral_product(a, b):
    sa = np.fft.rfft(a, 64)  # expect[PERF002]
    sb = rfft(b, 64)  # expect[PERF002]
    return np.fft.irfft(sa * sb, 64)  # expect[PERF002]


def submodule_alias(a):
    return fft.rfft(a, 64)  # expect[PERF002]


def clean_pmf_path(pa, pb, weights):
    # Clean: PMF algebra through the Pmf layer keeps spectrum caching
    # and the tail-tolerance policy in force.
    mixed = pa.mixture([pa, pb], weights)
    return mixed.convolve(pb)


def clean_elementwise(a, b):
    # Clean: plain ndarray arithmetic is not spectral algebra.
    return np.multiply(a, b) + np.maximum(a, b)


def pinned_reference(a, b):
    return np.convolve(a, b)  # repro: allow[PERF002] -- oracle for a pin test
