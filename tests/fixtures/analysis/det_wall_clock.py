# repro: module=repro.sim.fixture_wall_clock
"""Deliberate DET001 violations: wall-clock reads in sim-scoped code.

Each expect marker names the diagnostic the test suite asserts on
that line.  This file lives under ``tests/fixtures/`` so the
tree-wide analysis run never visits it.
"""

import time
from datetime import datetime
from time import monotonic


def stamp_event():
    return time.time()  # expect[DET001]


def stamp_fancy():
    started = datetime.now()  # expect[DET001]
    return started, monotonic()  # expect[DET001]
