# repro: module=repro.sim.fixture_suppress
"""Line-level suppression syntax, analyzed with and without markers."""

import time


def suppressed_line():
    return time.time()  # repro: allow[DET001]


def suppressed_star():
    return time.time()  # repro: allow[*]


def unsuppressed():
    return time.time()  # expect[DET001]
