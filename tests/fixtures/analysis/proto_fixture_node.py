# repro: module=repro.storage.fixture_proto_node
"""Deliberate PROTO001/PROTO002 violations: kind/handler mismatches."""


class FixtureNode:
    def __init__(self, endpoint):
        self.endpoint = endpoint
        self.endpoint.on("fixture_read", self._on_read)
        self.endpoint.on("fixture_drain", self._on_drain)  # expect[PROTO002]

    def _on_read(self, payload, src):
        return payload

    def _on_drain(self, payload, src):
        return None

    def run(self):
        self.endpoint.call("peer", "fixture_read", None)
        self.endpoint.cast("peer", "fixture_write", None)  # expect[PROTO001]
