# repro: module=repro.sim.fixture_syntax
"""Unparseable on purpose: the runner must report PARSE, not crash."""

def broken(:
    pass
