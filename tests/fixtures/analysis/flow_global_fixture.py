# repro: module=repro.core.fixture_global
"""FLOW001 corpus: Environment/RNG handles escaping into global state.

True positives store a per-run handle (an ``Environment``, a
``RandomStreams``, or a stream drawn from one) at module scope, via a
``global`` rebind, or into a module-level container — including
through a helper whose return value is tainted.  Near-miss negatives
keep handles on instances or store run-scoped plain data.
"""

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

SHARED_ENV = Environment()  # expect[FLOW001]
_CACHE = {}
_RESULTS = []
_LIMIT = 32


def make_streams():
    return RandomStreams(seed=7)


def remember(env, name):
    _CACHE[name] = env  # expect[FLOW001]


def remember_stream(streams, name):
    stream = streams.get(name)
    _RESULTS.append(stream)  # expect[FLOW001]


def promote(env):
    global SHARED_ENV
    SHARED_ENV = env  # expect[FLOW001]


def remember_indirect(name):
    handle = make_streams()
    _CACHE[name] = handle  # expect[FLOW001]


def remember_result(env, name):
    _CACHE[name] = env.now  # negative: plain data, not the handle


def local_use(env):
    streams = RandomStreams(seed=1)  # negative: stays function-local
    return streams.get("workload").random() + env.now


class Holder:
    def __init__(self, env):
        self.env = env  # negative: instance state dies with the run
