# repro: module=repro.core.fixture_states
"""A state enum with an unreachable member (PROTO003).

Analyzed together with ``proto_fixture_states_use.py``, which reaches
every member except ZOMBIE.
"""

import enum


class ReplicaState(enum.Enum):
    ONLINE = "online"
    OFFLINE = "offline"
    ZOMBIE = "zombie"  # expect[PROTO003]
