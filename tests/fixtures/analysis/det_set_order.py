# repro: module=repro.storage.fixture_set_order
"""Deliberate DET004/DET005 violations: hash-order scheduling."""


def fan_out(replicas, send):
    pending = set(replicas)
    for replica in pending:  # expect[DET005]
        send(replica)


def dispatch_order(handlers):
    return sorted(handlers, key=id)  # expect[DET004]


def snapshot(keys):
    return list({key for key in keys})  # expect[DET005]


def safe_fan_out(replicas, send):
    # Clean: sorted() pins the order, so no diagnostics below.
    for replica in sorted(set(replicas)):
        send(replica)
