# repro: module=repro.net.fixture_perf
"""Deliberate PERF001 violations: unslotted hot-path classes."""

import enum
from dataclasses import dataclass
from typing import NamedTuple, Protocol


class Packet:  # expect[PERF001]
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


@dataclass
class Frame:  # expect[PERF001]
    src: int
    dst: int


class SlottedPacket:
    __slots__ = ("src", "dst")

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class TransportError(Exception):
    """Clean: exceptions are failure-path, never hot."""


class LinkHealth(enum.Enum):
    """Clean: Enum metaclass manages layout."""

    UP = "up"
    DOWN = "down"


class Address(NamedTuple):
    """Clean: NamedTuple is slotted by construction."""

    dc: int
    port: int


class Sink(Protocol):
    """Clean: Protocol classes are never instantiated."""

    def deliver(self, packet) -> None: ...


class DebugProbe:  # repro: allow[PERF001] -- test-only introspection hook
    def __init__(self):
        self.seen = []
