# repro: module=repro.core.fixture_global_random
"""Deliberate DET002/DET003 violations: global RNG state, OS entropy."""

import os
import random
import uuid
from random import randint


def jitter_ms():
    return random.random() * 5.0  # expect[DET002]


def reseed():
    random.seed(42)  # expect[DET002]


def roll():
    return randint(1, 6)  # expect[DET002]


def token():
    seed = os.urandom(8)  # expect[DET003]
    return seed, uuid.uuid4()  # expect[DET003]
