# repro: module=repro.sim.fixture_process
"""Deliberate SIM violations: broken kernel-process discipline."""

import time


def not_a_generator(env):
    return env.timeout(5)


def chatty(env):
    yield env.timeout(1)
    yield 5  # expect[SIM002]
    yield  # expect[SIM002]


def sleepy(env):
    time.sleep(0.1)  # expect[SIM003]
    yield env.timeout(1)


def boot(env):
    env.process(not_a_generator(env))  # expect[SIM001]
    env.process(chatty(env))
    env.process(sleepy(env))
