# repro: module=repro.net.fixture_rng
"""Deliberate RNG-discipline violations: ad-hoc stream construction."""

import random

import numpy as np


def unseeded():
    return random.Random()  # expect[RNG001]


def ad_hoc(seed):
    return random.Random(seed)  # expect[RNG002]


def numpy_global(n):
    np.random.seed(0)  # expect[RNG003]
    return np.random.rand(n)  # expect[RNG003]


def shared_default(rng=random.Random(7)):  # expect[RNG004]
    return rng.random()
