# repro: module=repro.mdcc.fixture_engine
"""Engine-internals corpus: call-graph edges, CFG shapes, recursion.

No ``expect[...]`` markers — this file feeds the symbol-table,
call-graph, CFG, and dataflow unit tests in ``test_analysis_flow.py``,
which assert on graph structure rather than diagnostics.
"""


class Service:
    def __init__(self, env, endpoint):
        self.env = env
        self.endpoint = endpoint
        self.jobs = []
        endpoint.on("submit", self._on_submit)
        endpoint.on("drain", self._on_drain)
        env.process(self._serve())

    def _on_submit(self, msg):
        self.jobs.append(msg)

    def _on_drain(self, msg):
        self.jobs.clear()

    def _serve(self):
        while True:
            yield self.env.timeout(1)
            self._flush()

    def _flush(self):
        self.endpoint.cast("peer", "submit", None)
        self.endpoint.call("peer", "drain", None)


def loop_with_finally(env, items):
    for item in items:
        try:
            yield env.timeout(item)
        except ValueError:
            item = 0
        finally:
            record(item)
    while items:
        items = items[1:]
        yield env.timeout(1)


def record(item):
    return item


def countdown(n):
    if n <= 0:
        return 0
    return countdown(n - 1)


def mutual_a(n):
    return mutual_b(n - 1) if n else 0


def mutual_b(n):
    return mutual_a(n - 1) if n else 1
