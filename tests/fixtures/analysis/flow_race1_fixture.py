# repro: module=repro.mdcc.fixture_race1
"""RACE001 corpus: stale ``self.*`` snapshots across yield points.

True positives cache shared state in a local before a yield and use
the local after it while another method (an RPC handler) mutates the
same attribute.  Near-miss negatives document the escapes: re-reading
after the yield, attributes nobody else writes, and methods the kernel
never interleaves.
"""


class Coordinator:
    def __init__(self, env, endpoint):
        self.env = env
        self.endpoint = endpoint
        self.pending = {}
        self.ballot = 0
        self.quiet = 0
        endpoint.on("vote", self._on_vote)
        env.process(self._commit_loop())
        env.process(self._fresh_loop())

    def _on_vote(self, msg):
        self.pending[msg.txn] = msg
        self.ballot += 1

    def _commit_loop(self):
        while True:
            batch = self.pending
            ballot = self.ballot
            yield self.env.timeout(1)
            for txn in batch:  # expect[RACE001]
                self._apply(txn)
            self._seal(ballot)  # expect[RACE001]

    def _apply(self, txn):
        self.endpoint.cast("peer", "vote", txn)
        return txn

    def _seal(self, ballot):
        return ballot

    def _fresh_loop(self):
        while True:
            batch = self.pending
            yield self.env.timeout(1)
            batch = self.pending  # negative: re-read after the yield
            for txn in batch:
                self._apply(txn)

    def _private_loop(self):
        while True:
            quiet = self.quiet  # negative: no other method writes quiet
            yield self.env.timeout(1)
            self._seal(quiet)

    def _pre_yield_only(self):
        batch = self.pending
        for txn in batch:  # negative: use happens before the yield
            self._apply(txn)
        yield self.env.timeout(1)


class OfflineReport:
    """Negative: never spawned as a process, registers no handlers —
    the kernel cannot interleave anything while it runs."""

    def __init__(self, rows):
        self.rows = rows

    def _render(self):
        rows = self.rows
        yield "header"
        for row in rows:
            yield row

    def _mutate(self, row):
        self.rows.append(row)
