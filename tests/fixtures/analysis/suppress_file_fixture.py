# repro: module=repro.sim.fixture_suppress_file
# repro: allow-file[DET001]
"""File-wide suppression of one code; other codes still fire."""

import random
import time


def clock():
    return time.time()


def draw():
    return random.random()  # expect[DET002]
