# repro: module=repro.mdcc.fixture_race2
"""RACE002 corpus: check-then-act across a yield.

True positives test a guard on shared ``self.*`` state, suspend at a
yield inside the guarded branch, then mutate the guarded attribute
without re-checking.  Near-miss negatives re-check after resuming,
mutate before yielding, or guard state nobody else writes.
"""


class Registrar:
    def __init__(self, env, endpoint):
        self.env = env
        self.endpoint = endpoint
        self.leases = {}
        self.epoch = 0
        self.local_only = 0
        endpoint.on("expire", self._on_expire)
        env.process(self._grant_loop())

    def _on_expire(self, msg):
        self.leases.pop(msg.key, None)
        self.epoch += 1

    def _evict(self, key):
        self.endpoint.cast("peer", "expire", key)

    def _grant_loop(self):
        while True:
            if self.leases:
                yield self.env.timeout(1)
                self.leases.clear()  # expect[RACE002]
            yield self.env.timeout(1)

    def _bump_epoch(self):
        if self.epoch == 0:
            yield self.env.timeout(1)
            self.epoch = 1  # expect[RACE002]

    def _rechecked(self):
        if self.leases:
            yield self.env.timeout(1)
            if self.leases:  # negative: guard re-checked after resume
                self.leases.clear()

    def _act_before_yield(self):
        if self.leases:
            self.leases.clear()  # negative: mutation precedes the yield
            yield self.env.timeout(1)

    def _unshared_guard(self):
        if self.local_only == 0:
            yield self.env.timeout(1)
            self.local_only = 1  # negative: nobody else writes local_only
