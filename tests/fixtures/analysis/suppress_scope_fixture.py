# repro: module=repro.sim.fixture_suppress_scope
"""Suppression scoping: decorator/def aliasing and function scope.

Three mechanisms under test, each paired with a near-miss that must
still fire:

- an ``allow[...]`` on a decorator line covers a diagnostic anchored
  at the ``def`` line (RNG004 anchors its finding inside the default
  argument, i.e. on the ``def`` line itself);
- an ``allow[...]`` on the ``def`` line covers a diagnostic anchored
  at a decorator line (DET001 inside a decorator argument);
- ``allow-fn[...]`` covers every line of the function body, but only
  for the listed code and only inside that function's span.
"""

import random
import time


def tagged(label):
    def wrap(fn):
        return fn
    return wrap


# -- decorator-line marker, def-line diagnostic ------------------------------


@tagged("rng")  # repro: allow[RNG004]
def seeded_default(rng=random.Random(7)):
    return rng.getstate()


# -- def-line marker, decorator-line diagnostic ------------------------------


@tagged(time.time())
def stamped():  # repro: allow[DET001]
    return 0


# -- function-scope suppression ----------------------------------------------


def bulk_scope():  # repro: allow-fn[DET001]
    first = time.time()
    second = time.time()
    return first - second


# -- near-misses: these must still fire --------------------------------------


@tagged("miss")
def unsuppressed_default(rng=random.Random(9)):  # expect[RNG004]
    return rng.getstate()


def wrong_code():  # repro: allow-fn[RNG002]
    return time.time()  # expect[DET001]


def outside_span():
    return time.time()  # expect[DET001]
