# repro: module=repro.core.fixture_states_use
"""Companion module: reaches every ReplicaState member but ZOMBIE."""

from repro.core.fixture_states import ReplicaState


def transition(online):
    return ReplicaState.ONLINE if online else ReplicaState.OFFLINE
