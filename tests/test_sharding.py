"""Sharded experiment execution: decomposition, merge, determinism.

The load-bearing contract (see :mod:`repro.harness.sharding`): one
shard decomposition has one exact answer — running the shards serially
in-process or through a real worker pool produces byte-identical
merged results, and a 1-shard run is exactly the plain experiment.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.parallel import WorkerPool
from repro.harness.sharding import (
    _merge_metric_dumps,
    derive_shard_seed,
    merge_results,
    run_sharded,
    shard_configs,
    split_evenly,
)

SEEDS = [11, 29, 101]


def _config(seed: int, observe: bool = False) -> ExperimentConfig:
    return ExperimentConfig(
        name="shard-test", seed=seed, system="planet",
        topology="uniform", n_datacenters=3, n_items=500,
        rate_tps=90.0, oracle_samples=100,
        warmup_ms=200.0, duration_ms=900.0, drain_ms=600.0,
        load_engine="aggregate-vectorized", load_population=6_000,
        observe=observe)


def _digest(result) -> str:
    payload = json.dumps({
        "records": [dataclasses.asdict(record)
                    for record in result.metrics.all_records],
        "summary": result.summary(),
        "likelihoods": result.initial_likelihoods,
        "reads": result.read_latencies_ms,
        "obs": result.obs,
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.fixture(scope="module")
def pool():
    # Oversubscribed so the pooled arm really forks even on a 1-CPU
    # CI host — this is a correctness test, not a performance one.
    worker_pool = WorkerPool(2, oversubscribe=True)
    yield worker_pool
    worker_pool.close()


# -- decomposition ----------------------------------------------------------

def test_split_evenly_covers_total():
    assert split_evenly(10, 4) == [3, 3, 2, 2]
    assert split_evenly(9, 3) == [3, 3, 3]
    assert split_evenly(1, 2) == [1, 0]
    assert sum(split_evenly(1_000_003, 7)) == 1_000_003
    with pytest.raises(ValueError):
        split_evenly(4, 0)


def test_derive_shard_seed_is_deterministic_and_distinct():
    seeds = [derive_shard_seed(42, shard, 8) for shard in range(8)]
    assert seeds == [derive_shard_seed(42, shard, 8) for shard in range(8)]
    assert len(set(seeds)) == 8
    # A different decomposition of the same parent seed gets different
    # streams too: shard 0 of 2 is not shard 0 of 4.
    assert derive_shard_seed(42, 0, 2) != derive_shard_seed(42, 0, 4)
    assert all(0 <= seed <= 0x7FFFFFFF for seed in seeds)


def test_shard_configs_split_rate_and_population():
    config = _config(seed=7)
    shards = shard_configs(config, 4)
    assert len(shards) == 4
    assert sum(shard.load_population for shard in shards) == \
        config.load_population
    assert sum(shard.rate_tps for shard in shards) == \
        pytest.approx(config.rate_tps)
    assert len({shard.seed for shard in shards}) == 4
    assert [shard.name for shard in shards] == [
        f"shard-test#s{index}of4" for index in range(4)]
    # One shard passes through verbatim — same object, not a copy.
    assert shard_configs(config, 1)[0] is config
    with pytest.raises(ValueError):
        shard_configs(config, 0)


# -- determinism: serial vs pooled, sharded vs plain ------------------------

def test_one_shard_is_exactly_the_plain_run():
    config = _config(seed=SEEDS[0])
    assert _digest(run_sharded(config, 1)) == \
        _digest(Experiment(config).run())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_digest_identical_serial_vs_pooled(seed, shards, pool):
    config = _config(seed=seed)
    serial = run_sharded(config, shards, processes=1)
    pooled = run_sharded(config, shards, pool=pool)
    assert _digest(serial) == _digest(pooled), (
        f"seed {seed} x {shards} shards: pooled result drifted")


def test_sharded_obs_artifacts_merge_deterministically(pool):
    config = _config(seed=SEEDS[1], observe=True)
    serial = run_sharded(config, 2, processes=1)
    pooled = run_sharded(config, 2, pool=pool)
    assert serial.obs is not None and pooled.obs is not None
    assert _digest(serial) == _digest(pooled)
    assert serial.obs["meta"]["shards"] == 2
    assert serial.obs["meta"]["name"] == config.name
    assert serial.obs["meta"]["seed"] == config.seed


def test_merged_records_interleave_by_issue_time():
    config = _config(seed=SEEDS[2])
    merged = run_sharded(config, 4, processes=1)
    issued = [record.issued_ms for record in merged.metrics.all_records]
    assert issued == sorted(issued)
    assert merged.metrics.all_records, "merged run produced no records"


# -- merge edge cases -------------------------------------------------------

def test_merge_rejects_disagreeing_windows():
    config = _config(seed=5)
    shards = shard_configs(config, 2)
    first = Experiment(shards[0]).run()
    second = Experiment(shards[1]).run()
    second.metrics.window_end_ms += 1.0
    with pytest.raises(ValueError):
        merge_results(config, [first, second])
    with pytest.raises(ValueError):
        merge_results(config, [])


def test_merge_metric_dumps_combines_series():
    dumps = [
        {
            "counters": {"tx": {"": 3.0, "hot": 1.0}},
            "gauges": {"depth": {"": 5.0}},
            "histograms": {"lat": {
                "bounds": [1.0, 2.0],
                "series": {"": {"count": 2, "sum": 3.0, "min": 1.0,
                                "max": 2.0, "buckets": [1, 1, 0]}},
            }},
        },
        {
            "counters": {"tx": {"": 4.0}},
            "gauges": {"depth": {"": 2.0}},
            "histograms": {"lat": {
                "bounds": [1.0, 2.0],
                "series": {"": {"count": 1, "sum": 0.5, "min": 0.5,
                                "max": 0.5, "buckets": [1, 0, 0]}},
            }},
        },
    ]
    merged = _merge_metric_dumps(dumps)
    assert merged["counters"]["tx"] == {"": 7.0, "hot": 1.0}
    assert merged["gauges"]["depth"] == {"": 5.0}  # max, not sum
    series = merged["histograms"]["lat"]["series"][""]
    assert series["count"] == 3
    assert series["sum"] == 3.5
    assert series["min"] == 0.5
    assert series["max"] == 2.0
    assert series["buckets"] == [2, 1, 0]


def test_merge_metric_dumps_rejects_mismatched_bounds():
    dumps = [
        {"counters": {}, "gauges": {}, "histograms": {"lat": {
            "bounds": [1.0], "series": {}}}},
        {"counters": {}, "gauges": {}, "histograms": {"lat": {
            "bounds": [2.0], "series": {}}}},
    ]
    with pytest.raises(ValueError):
        _merge_metric_dumps(dumps)


def test_merge_metric_dumps_empty_series_min_max():
    """An empty histogram series on one shard must not poison the
    min/max of the populated one."""
    empty = {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
             "buckets": [0, 0]}
    full = {"count": 2, "sum": 9.0, "min": 4.0, "max": 5.0,
            "buckets": [2, 0]}
    merged = _merge_metric_dumps([
        {"counters": {}, "gauges": {}, "histograms": {"lat": {
            "bounds": [10.0], "series": {"": dict(empty)}}}},
        {"counters": {}, "gauges": {}, "histograms": {"lat": {
            "bounds": [10.0], "series": {"": dict(full)}}}},
    ])
    series = merged["histograms"]["lat"]["series"][""]
    assert series["count"] == 2
    assert series["min"] == 4.0
    assert series["max"] == 5.0
