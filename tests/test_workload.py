"""Tests for the TPC-W-like buy workload."""

import random

import pytest

from repro.sim import Environment, RandomStreams
from repro.storage import WriteOp
from repro.workload import (
    BuyTransactionFactory,
    HotspotAccess,
    OpenSystemLoad,
    PoissonArrivals,
    UniformAccess,
    generate_items,
)
from repro.workload.items import item_key
from repro.workload.load import UniformArrivals


# ---------------------------------------------------------------- items


def test_generate_items():
    items = generate_items(3, initial_stock=50)
    assert items == {"item:0": 50, "item:1": 50, "item:2": 50}


def test_generate_items_validation():
    with pytest.raises(ValueError):
        generate_items(0)
    with pytest.raises(ValueError):
        generate_items(1, initial_stock=-1)


# ---------------------------------------------------------------- access


def test_uniform_access_distinct_keys():
    pattern = UniformAccess(100)
    rng = random.Random(0)
    keys = pattern.sample_keys(rng, 4)
    assert len(set(keys)) == 4
    assert all(not pattern.is_hot(k) for k in keys)


def test_uniform_access_covers_table():
    pattern = UniformAccess(10)
    rng = random.Random(1)
    seen = set()
    for _ in range(500):
        seen.update(pattern.sample_keys(rng, 1))
    assert len(seen) == 10


def test_uniform_access_validation():
    with pytest.raises(ValueError):
        UniformAccess(0)
    pattern = UniformAccess(3)
    with pytest.raises(ValueError):
        pattern.sample_keys(random.Random(0), 4)


def test_hotspot_access_fraction():
    pattern = HotspotAccess(1000, hotspot_size=10, hot_prob=0.9)
    rng = random.Random(2)
    hot = 0
    trials = 3000
    for _ in range(trials):
        keys = pattern.sample_keys(rng, 2)
        if any(pattern.is_hot(k) for k in keys):
            hot += 1
    assert 0.85 < hot / trials < 0.95


def test_hotspot_transactions_stay_in_region():
    pattern = HotspotAccess(1000, hotspot_size=10, hot_prob=0.9)
    rng = random.Random(3)
    for _ in range(200):
        keys = pattern.sample_keys(rng, 3)
        hotness = {pattern.is_hot(k) for k in keys}
        assert len(hotness) == 1  # all hot or all cold


def test_hotspot_count_clamped_to_region():
    pattern = HotspotAccess(1000, hotspot_size=2, hot_prob=1.0)
    rng = random.Random(4)
    keys = pattern.sample_keys(rng, 4)
    assert len(keys) == 2  # cannot pick 4 distinct from a 2-item hotspot


def test_hotspot_validation():
    with pytest.raises(ValueError):
        HotspotAccess(10, hotspot_size=0)
    with pytest.raises(ValueError):
        HotspotAccess(10, hotspot_size=11)
    with pytest.raises(ValueError):
        HotspotAccess(10, hotspot_size=5, hot_prob=2.0)


# ---------------------------------------------------------------- factory


def test_factory_builds_decrements():
    factory = BuyTransactionFactory(UniformAccess(100), min_items=2,
                                    max_items=2, quantity=3)
    writes, hot = factory.build(random.Random(0))
    assert len(writes) == 2
    assert all(isinstance(op, WriteOp) for op in writes)
    assert all(op.update.kind == "delta" and op.update.value == -3
               for op in writes)
    assert not hot


def test_factory_size_range():
    factory = BuyTransactionFactory(UniformAccess(100))
    rng = random.Random(1)
    sizes = {len(factory.build(rng)[0]) for _ in range(200)}
    assert sizes == {1, 2, 3, 4}


def test_factory_floor_option():
    factory = BuyTransactionFactory(UniformAccess(10),
                                    enforce_stock_floor=True)
    writes, _hot = factory.build(random.Random(2))
    assert all(op.update.floor == 0 for op in writes)


def test_factory_hot_flag():
    pattern = HotspotAccess(100, hotspot_size=10, hot_prob=1.0)
    factory = BuyTransactionFactory(pattern)
    _writes, hot = factory.build(random.Random(3))
    assert hot


def test_factory_validation():
    with pytest.raises(ValueError):
        BuyTransactionFactory(UniformAccess(10), min_items=3, max_items=2)
    with pytest.raises(ValueError):
        BuyTransactionFactory(UniformAccess(10), quantity=0)


# ---------------------------------------------------------------- load


class _CountingIssuer:
    def __init__(self):
        self.calls = []

    def issue(self, writes, touches_hotspot):
        self.calls.append((len(writes), touches_hotspot))


def test_open_system_load_rate():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(1000))
    issuer = _CountingIssuer()
    load = OpenSystemLoad(env, factory, issuer, rate_tps=100.0,
                          streams=RandomStreams(seed=5))
    load.start(duration_ms=10_000)
    env.run()
    # 100 TPS over 10 s -> about 1000 arrivals.
    assert 850 < len(issuer.calls) < 1150
    assert load.issued == len(issuer.calls)


def test_open_system_uniform_arrivals_exact():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(1000))
    issuer = _CountingIssuer()
    load = OpenSystemLoad(env, factory, issuer, rate_tps=50.0,
                          streams=RandomStreams(seed=6),
                          arrivals=UniformArrivals(50.0))
    load.start(duration_ms=2_000)
    env.run()
    assert len(issuer.calls) == 99  # metronome at 20ms, open interval


def test_open_system_stop():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(1000))
    issuer = _CountingIssuer()
    load = OpenSystemLoad(env, factory, issuer, rate_tps=100.0,
                          streams=RandomStreams(seed=7))
    load.start()

    def stopper(env):
        yield env.timeout(1_000)
        load.stop()

    env.process(stopper(env))
    env.run()
    assert 50 < len(issuer.calls) < 200


def test_open_system_double_start_rejected():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(1000))
    load = OpenSystemLoad(env, factory, _CountingIssuer(), rate_tps=10.0,
                          streams=RandomStreams(seed=8))
    load.start(duration_ms=100)
    with pytest.raises(RuntimeError):
        load.start(duration_ms=100)


def test_arrival_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0)
    with pytest.raises(ValueError):
        UniformArrivals(-5)


class _ReadCountingIssuer(_CountingIssuer):
    def __init__(self):
        super().__init__()
        self.reads = []

    def issue_read(self, keys):
        self.reads.append(list(keys))


def test_read_fraction_splits_traffic():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(1000))
    issuer = _ReadCountingIssuer()
    load = OpenSystemLoad(env, factory, issuer, rate_tps=200.0,
                          streams=RandomStreams(seed=9),
                          read_fraction=0.8)
    load.start(duration_ms=10_000)
    env.run()
    total = len(issuer.calls) + len(issuer.reads)
    assert total > 1500
    read_share = len(issuer.reads) / total
    assert 0.75 < read_share < 0.85
    assert load.reads_issued == len(issuer.reads)
    assert all(1 <= len(keys) <= 4 for keys in issuer.reads)


def test_read_fraction_validation():
    env = Environment()
    factory = BuyTransactionFactory(UniformAccess(10))
    with pytest.raises(ValueError):
        OpenSystemLoad(env, factory, _ReadCountingIssuer(), rate_tps=10.0,
                       streams=RandomStreams(seed=1), read_fraction=1.0)
    with pytest.raises(ValueError):
        # plain issuer cannot serve reads
        OpenSystemLoad(env, factory, _CountingIssuer(), rate_tps=10.0,
                       streams=RandomStreams(seed=1), read_fraction=0.5)


# ---------------------------------------------------------------- zipfian


def test_zipfian_skews_to_head():
    from repro.workload import ZipfianAccess
    pattern = ZipfianAccess(1000, s=0.99)
    rng = random.Random(11)
    counts = {}
    for _ in range(5000):
        key = pattern.sample_keys(rng, 1)[0]
        counts[key] = counts.get(key, 0) + 1
    head = counts.get(item_key(0), 0)
    mid = counts.get(item_key(500), 0)
    assert head > 50 * max(mid, 1) or mid == 0
    # Head rank roughly follows 1/H_n: around 7% of draws for n=1000.
    assert 0.03 < head / 5000 < 0.2


def test_zipfian_distinct_keys_and_hot_flag():
    from repro.workload import ZipfianAccess
    pattern = ZipfianAccess(50, s=1.2, hot_top=5)
    rng = random.Random(12)
    keys = pattern.sample_keys(rng, 4)
    assert len(set(keys)) == 4
    assert pattern.is_hot(item_key(0))
    assert not pattern.is_hot(item_key(49))
    assert not pattern.is_hot("garbage")


def test_zipfian_count_clamped():
    from repro.workload import ZipfianAccess
    pattern = ZipfianAccess(3, s=1.0)
    keys = pattern.sample_keys(random.Random(13), 10)
    assert sorted(keys) == [item_key(0), item_key(1), item_key(2)]


def test_zipfian_validation():
    from repro.workload import ZipfianAccess
    with pytest.raises(ValueError):
        ZipfianAccess(0)
    with pytest.raises(ValueError):
        ZipfianAccess(10, s=0)
    with pytest.raises(ValueError):
        ZipfianAccess(10, hot_top=-1)
