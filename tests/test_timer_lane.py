"""Kernel timer lanes: ordering vs the heap, windows, cancellation.

The contract under test (see :class:`repro.sim.TimerLane`): lane
entries fire interleaved with heap events in timestamp order, the heap
wins exact-timestamp ties, a ``run(until=t)`` boundary stops before a
lane entry at exactly ``t``, and lanes survive across successive run
windows like queued timeouts do.
"""

import pytest

from repro.sim import Environment, TimerLane


def test_lane_interleaves_with_heap_events():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(1.0)
        order.append(("heap", env.now))
        yield env.timeout(2.0)
        order.append(("heap", env.now))

    env.process(proc(env))
    env.add_timer_lane([0.5, 1.5, 2.5],
                       lambda i: order.append(("lane", env.now, i)))
    env.run()
    assert order == [("lane", 0.5, 0), ("heap", 1.0), ("lane", 1.5, 1),
                     ("lane", 2.5, 2), ("heap", 3.0)]


def test_heap_wins_exact_timestamp_ties():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(5.0)
        order.append("heap")

    env.process(proc(env))
    env.add_timer_lane([5.0], lambda i: order.append("lane"))
    env.run()
    assert order == ["heap", "lane"]


def test_lane_entries_fire_in_array_order():
    env = Environment()
    fired = []
    env.add_timer_lane([1.0, 1.0, 1.0], fired.append)
    env.run()
    assert fired == [0, 1, 2]


def test_until_boundary_stops_before_lane_entry():
    """An entry at exactly ``until`` must NOT fire — the urgent stop
    event wins the tie, matching Timeout semantics at a boundary."""
    env = Environment()
    fired = []
    env.add_timer_lane([1.0, 2.0, 3.0], fired.append)
    env.run(until=2.0)
    assert fired == [0]
    assert env.now == 2.0
    env.run()  # lane survives the window boundary
    assert fired == [0, 1, 2]


def test_lane_advances_clock_when_heap_empty():
    env = Environment()
    at = []
    env.add_timer_lane([4.0, 9.0], lambda i: at.append(env.now))
    env.run()
    assert at == [4.0, 9.0]
    assert env.now == 9.0


def test_peek_sees_lane_head():
    env = Environment()
    env.add_timer_lane([3.0], lambda i: None)

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    assert env.peek() == 0.0  # the process-initialize event
    env.step()
    assert env.peek() == 3.0  # lane head beats the 7.0 timeout
    env.run()
    assert env.now == 7.0


def test_cancel_drops_unfired_entries():
    env = Environment()
    fired = []
    lane = env.add_timer_lane([1.0, 2.0, 3.0], fired.append)

    def canceller(env):
        yield env.timeout(1.5)
        lane.cancel()

    env.process(canceller(env))
    env.run()
    assert fired == [0]
    assert lane.exhausted
    assert lane.remaining == 0


def test_callback_may_register_next_lane():
    """Chaining batches from the last entry's callback — the aggregate
    load engine's steady state — must keep the clock monotonic."""
    env = Environment()
    fired = []

    def fire(index):
        fired.append(env.now)
        if index == 1 and len(fired) == 2:
            env.add_timer_lane([env.now + 1.0, env.now + 2.0], fire)

    env.add_timer_lane([1.0, 2.0], fire)
    env.run()
    assert fired == [1.0, 2.0, 3.0, 4.0]


def test_unsorted_deadlines_rejected():
    with pytest.raises(ValueError):
        TimerLane([2.0, 1.0], lambda i: None)
    env = Environment()
    with pytest.raises(ValueError):
        env.add_timer_lane([3.0, 1.0], lambda i: None)


def test_past_deadlines_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    with pytest.raises(ValueError):
        env.add_timer_lane([4.0], lambda i: None)


def test_numpy_deadline_array_accepted():
    np = pytest.importorskip("numpy")
    env = Environment()
    fired = []
    env.add_timer_lane(np.array([1.0, 2.5]), fired.append)
    env.run()
    assert fired == [0, 1]
    assert env.now == 2.5


def test_empty_lane_is_noop():
    env = Environment()
    lane = env.add_timer_lane([], lambda i: None)
    assert lane.exhausted
    env.run()
    assert env.now == 0.0


def test_instrumented_run_counts_lane_firings():
    """The tracing/metrics slow path drains lanes identically."""
    env = Environment()
    order = []
    env.tracer = lambda *args, **kwargs: None

    def proc(env):
        yield env.timeout(1.0)
        order.append(("heap", env.now))

    env.process(proc(env))
    env.add_timer_lane([0.5, 1.5], lambda i: order.append(("lane", env.now)))
    env.run(until=1.2)
    assert order == [("lane", 0.5), ("heap", 1.0)]
    env.run()
    assert order == [("lane", 0.5), ("heap", 1.0), ("lane", 1.5)]
