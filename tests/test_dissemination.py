"""Tests for the full §5.2.1 statistics-dissemination pipeline."""

import numpy as np
import pytest

from repro.core.dissemination import (
    ClientStatsAgent,
    DisseminationService,
    NodeStatsStore,
)
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams


def make_world(n_dc=3, one_way=20.0, seed=55):
    env = Environment()
    topo = uniform_topology(n_dc, one_way_ms=one_way, sigma=0.05)
    streams = RandomStreams(seed=seed)
    cluster = Cluster(env, topo, streams)
    service = DisseminationService(env, cluster, streams, n_bins=256)
    return env, topo, cluster, service


# ---------------------------------------------------------------- node store


def test_store_aggregates_across_clients():
    store = NodeStatsStore(n_bins=4)
    store.absorb("a", {(0, 1): np.array([1.0, 0.0, 0.0, 0.0])})
    store.absorb("b", {(0, 1): np.array([0.0, 2.0, 0.0, 0.0])})
    aggregate = store.aggregate()
    assert aggregate[(0, 1)].tolist() == [1.0, 2.0, 0.0, 0.0]
    assert store.n_clients == 2


def test_store_repush_replaces_not_accumulates():
    store = NodeStatsStore(n_bins=2)
    store.absorb("a", {(0, 1): np.array([5.0, 0.0])})
    store.absorb("a", {(0, 1): np.array([6.0, 0.0])})  # cumulative repush
    assert store.aggregate()[(0, 1)].tolist() == [6.0, 0.0]


def test_store_size_aggregation():
    store = NodeStatsStore(n_bins=2)
    store.absorb("a", {}, size_counts={1: 3, 2: 1})
    store.absorb("b", {}, size_counts={2: 2})
    assert store.aggregate_sizes() == {1: 3, 2: 3}


def test_store_shape_validation():
    store = NodeStatsStore(n_bins=4)
    with pytest.raises(ValueError):
        store.absorb("a", {(0, 1): np.zeros(3)})


# ---------------------------------------------------------------- convergence


def test_single_agent_measures_its_own_row():
    env, topo, cluster, service = make_world()
    agent = service.start_agent(0, ping_interval_ms=400.0)
    env.run(until=4_000)
    # The agent measured (0, b) for every b itself.
    for b in range(3):
        hist = agent.own.get((0, b))
        assert hist is not None and hist.total_count() > 0


def test_agents_converge_to_full_matrix_via_aggregates():
    env, topo, cluster, service = make_world()
    agents = [service.start_agent(dc, ping_interval_ms=400.0)
              for dc in range(3)]
    env.run(until=6_000)
    # Every agent can now build a full matrix WITHOUT fallback: the
    # pairs it cannot measure came back in node aggregates.
    for agent in agents:
        matrix = agent.latency_matrix()
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert matrix.rtt(a, b).mean() == pytest.approx(
                        topo.mean_rtt(a, b), rel=0.3)


def test_fresh_agent_bootstraps_from_global_view():
    env, topo, cluster, service = make_world()
    for dc in range(3):
        service.start_agent(dc, ping_interval_ms=400.0)
    env.run(until=5_000)
    # A latecomer joins; within a couple of probe rounds it has the
    # whole matrix even though it measured almost nothing itself.
    late = service.start_agent(1, ping_interval_ms=400.0)
    env.run(until=6_500)
    assert late.coverage() >= 6
    matrix = late.latency_matrix()
    assert matrix.rtt(0, 2).mean() == pytest.approx(
        topo.mean_rtt(0, 2), rel=0.3)


def test_own_measurements_win_over_global_view():
    env, topo, cluster, service = make_world()
    agent = service.start_agent(0, ping_interval_ms=400.0)
    # Poison the global view for a pair the agent measures directly.
    agent.global_view[(0, 1)] = np.zeros(256)
    agent.global_view[(0, 1)][255] = 100.0  # absurd 510ms RTTs
    env.run(until=4_000)
    matrix = agent.latency_matrix(fallback=topo)
    assert matrix.rtt(0, 1).mean() < 100.0  # own data, not the poison


def test_size_distribution_merges_local_and_global():
    env, topo, cluster, service = make_world()
    agents = [service.start_agent(dc, ping_interval_ms=300.0)
              for dc in range(2)]
    agents[0].observe_transaction_size(1)
    agents[0].observe_transaction_size(3)
    env.run(until=3_000)
    # Agent 1 learned agent 0's sizes through the node aggregate.
    dist = agents[1].size_distribution()
    assert set(dist) == {1, 3}
    with pytest.raises(ValueError):
        agents[0].observe_transaction_size(0)


def test_windowed_aging_of_own_measurements():
    env, topo, cluster, service = make_world()
    agent = service.start_agent(0, ping_interval_ms=200.0,
                                rotate_ms=1_000.0)
    env.run(until=2_000)
    counts_live = sum(h.total_count() for h in agent.own.values())
    assert counts_live > 0
    # Stop probing (kill by advancing with an isolated network).
    for b in range(3):
        cluster.transport.partition(0, b)
    env.run(until=12_000)
    counts_after = sum(h.total_count() for h in agent.own.values())
    assert counts_after <= counts_live


def test_agent_builds_model_end_to_end():
    env, topo, cluster, service = make_world()
    agents = [service.start_agent(dc, ping_interval_ms=400.0)
              for dc in range(3)]
    agents[0].observe_transaction_size(2)
    env.run(until=6_000)
    model = agents[0].build_model(fallback=topo)
    assert model.ready
    likelihood = model.record_likelihood(0, 1, 0.001)
    assert 0.0 < likelihood < 1.0


def test_plain_ping_still_answered():
    # Legacy "ping" probes (the hub StatisticsService) get a bare ack
    # from the dissemination handler rather than crashing it.
    env, topo, cluster, service = make_world()
    from repro.net.rpc import RpcEndpoint
    probe = RpcEndpoint(env, cluster.transport, "probe", 0)
    replies = []

    def caller(env):
        reply = yield probe.call(cluster.node_address(1, 0), "ping", None)
        replies.append(reply)

    env.process(caller(env))
    env.run(until=1_000)
    assert replies == [None]
