"""Windowed rate series and recovery extraction (repro.obs.timeseries).

Pure math — every case is a hand-built series where the right answer
is computable by eye, including the edge the scenario gates tripped
on during bring-up: a disturbance ending exactly on a bin edge must
start the recovery search *at* that bin, not one later.
"""

import pytest

from repro.obs import (
    BinnedSeries,
    binned_rate,
    extract_recovery,
    quantile,
)


# ---------------------------------------------------------------- series


def test_binned_rate_counts_per_second():
    series = binned_rate([0.0, 10.0, 990.0, 1_500.0], 0.0, 2_000.0, 1_000.0)
    assert series.values == (3.0, 1.0)
    assert series.end_ms == 2_000.0


def test_binned_rate_ignores_out_of_range_events():
    series = binned_rate([-5.0, 0.0, 2_000.0], 0.0, 2_000.0, 1_000.0)
    assert series.values == (1.0, 0.0)


def test_binned_rate_scales_by_bin_width():
    series = binned_rate([0.0, 100.0], 0.0, 500.0, 500.0)
    assert series.values == (4.0,)  # 2 events / 0.5 s


def test_binned_rate_rejects_bad_windows():
    with pytest.raises(ValueError):
        binned_rate([], 0.0, 1_000.0, 0.0)
    with pytest.raises(ValueError):
        binned_rate([], 1_000.0, 1_000.0, 100.0)


def test_series_accessors():
    series = BinnedSeries(start_ms=1_000.0, bin_ms=250.0,
                          values=(1.0, 2.0, 3.0, 4.0))
    assert len(series) == 4
    assert series.bin_start_ms(2) == 1_500.0
    assert series.index_of(1_499.9) == 1
    assert series.index_of(99_999.0) == 3  # clamped
    assert series.mean_over(1_000.0, 1_500.0) == pytest.approx(1.5)
    assert series.mean_over(5_000.0, 6_000.0) == 0.0


def test_quantile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert quantile(values, 0.0) == 1.0
    assert quantile(values, 0.5) == 3.0
    assert quantile(values, 1.0) == 5.0
    assert quantile([], 0.99) == 0.0
    with pytest.raises(ValueError):
        quantile(values, 1.5)


# ---------------------------------------------------------------- recovery


def _series(values, bin_ms=100.0):
    return BinnedSeries(start_ms=0.0, bin_ms=bin_ms, values=tuple(values))


def test_no_dip_means_zero_recovery_time():
    series = _series([10.0] * 10)
    metrics = extract_recovery(series, 400.0, 600.0)
    assert metrics.recovered and metrics.recovery_ms == 0.0
    assert metrics.dip_depth == 0.0
    assert metrics.baseline_rate == pytest.approx(10.0)


def test_fault_end_on_bin_edge_counts_that_bin():
    # Disturbance ends exactly at 600.0: the bin starting at 600.0 is
    # post-fault, so an immediately-healthy series recovers at 0 ms.
    series = _series([10.0, 10.0, 10.0, 10.0, 2.0, 2.0, 10.0, 10.0, 10.0,
                      10.0])
    metrics = extract_recovery(series, 400.0, 600.0, sustain_bins=2)
    assert metrics.recovery_ms == 0.0
    assert metrics.dip_rate == pytest.approx(2.0)
    assert metrics.dip_depth == pytest.approx(0.8)


def test_delayed_recovery_is_measured_from_fault_end():
    series = _series([10.0, 10.0, 10.0, 10.0, 2.0, 2.0, 4.0, 6.0, 10.0,
                      10.0, 10.0])
    metrics = extract_recovery(series, 400.0, 600.0, sustain_bins=2)
    assert metrics.recovered
    assert metrics.recovery_ms == pytest.approx(200.0)  # first ok bin: 800
    assert metrics.dip_rate == pytest.approx(2.0)


def test_sustain_bins_use_rolling_mean():
    # 9.0 then 10.2: each individually straddles the 9.5 bar but the
    # two-bin mean is 9.6 >= 9.5, so the window counts as recovered.
    series = _series([10.0, 10.0, 10.0, 10.0, 2.0, 2.0, 9.0, 10.2, 9.0,
                      10.2])
    metrics = extract_recovery(series, 400.0, 600.0, sustain_bins=2)
    assert metrics.recovered and metrics.recovery_ms == pytest.approx(0.0)


def test_never_recovering_series():
    series = _series([10.0, 10.0, 10.0, 10.0, 2.0, 2.0, 3.0, 3.0, 3.0])
    metrics = extract_recovery(series, 400.0, 600.0)
    assert not metrics.recovered and metrics.recovery_ms is None
    assert "never" in metrics.row()[3]


def test_baseline_cap_clamps_lucky_prefault_stretch():
    # Pre-fault rate 12/s but the offered rate caps the bar at 10/s:
    # the post-fault 9.8/s plateau clears 0.95 * 10, not 0.95 * 12.
    series = _series([12.0, 12.0, 12.0, 12.0, 2.0, 2.0, 9.8, 9.8, 9.8])
    uncapped = extract_recovery(series, 400.0, 600.0)
    capped = extract_recovery(series, 400.0, 600.0, baseline_cap=10.0)
    assert not uncapped.recovered
    assert capped.recovered and capped.baseline_rate == pytest.approx(10.0)


def test_empty_baseline_is_an_honest_failure():
    series = _series([0.0, 0.0, 5.0, 5.0])
    metrics = extract_recovery(series, 200.0, 300.0)
    assert not metrics.recovered
    assert metrics.dip_depth == 1.0 and metrics.baseline_rate == 0.0


def test_baseline_window_override():
    series = _series([100.0, 10.0, 10.0, 10.0, 2.0, 10.0, 10.0])
    # Skip the warmup spike at bin 0.
    metrics = extract_recovery(series, 400.0, 500.0,
                               baseline_start_ms=100.0)
    assert metrics.baseline_rate == pytest.approx(10.0)
    assert metrics.recovered


def test_parameter_validation():
    series = _series([1.0, 1.0])
    with pytest.raises(ValueError):
        extract_recovery(series, 200.0, 100.0)
    with pytest.raises(ValueError):
        extract_recovery(series, 0.0, 100.0, threshold=1.5)
    with pytest.raises(ValueError):
        extract_recovery(series, 0.0, 100.0, sustain_bins=0)
