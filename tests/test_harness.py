"""Tests for metrics aggregation and the experiment runner."""

import pytest

from repro.core import DynamicPolicy
from repro.harness import (
    Experiment,
    ExperimentConfig,
    MetricsCollector,
    TxRecord,
    format_table,
)


def record(**kwargs):
    defaults = dict(system="planet", issued_ms=1000.0, timeout_ms=500.0,
                    hot=False, size=1)
    defaults.update(kwargs)
    return TxRecord(**defaults)


# ---------------------------------------------------------------- records


def test_record_response_prefers_spec():
    r = record(spec_ms=1010.0, decided_ms=1200.0, committed=True)
    assert r.response_ms == pytest.approx(10.0)


def test_record_response_falls_back_to_decision():
    r = record(decided_ms=1200.0, committed=True)
    assert r.response_ms == pytest.approx(200.0)


def test_record_outcome_classes_traditional():
    assert record(system="traditional", decided_ms=1300.0,
                  committed=True).outcome_class() == "commit"
    assert record(system="traditional", decided_ms=1300.0,
                  committed=False).outcome_class() == "abort"
    # Decided after the timeout: a JDBC client never learns it.
    assert record(system="traditional", decided_ms=1700.0,
                  committed=True).outcome_class() == "unknown"
    assert record(system="traditional").outcome_class() == "unknown"


def test_record_outcome_classes_planet():
    assert record(accepted_ms=1100.0, decided_ms=1700.0,
                  committed=True).outcome_class() == "accept-commit"
    assert record(accepted_ms=1100.0, decided_ms=1700.0,
                  committed=False).outcome_class() == "accept-abort"
    assert record(accepted_ms=1600.0, decided_ms=1700.0,
                  committed=True).outcome_class() == "unknown"
    assert record(admitted=False).outcome_class() == "rejected"
    assert record(decided_ms=1400.0,
                  committed=True).outcome_class() == "commit"


# ---------------------------------------------------------------- collector


def make_collector():
    collector = MetricsCollector(0.0, 10_000.0)  # 10-second window
    collector.add(record(issued_ms=100.0, decided_ms=300.0, committed=True))
    collector.add(record(issued_ms=200.0, decided_ms=500.0, committed=False))
    collector.add(record(issued_ms=300.0, spec_ms=310.0, decided_ms=700.0,
                         committed=True, hot=True))
    collector.add(record(issued_ms=400.0, spec_ms=410.0, decided_ms=900.0,
                         committed=False, spec_incorrect=True))
    collector.add(record(issued_ms=500.0, admitted=False, committed=False))
    # Outside the window: must be ignored.
    collector.add(record(issued_ms=99_000.0, committed=True))
    return collector


def test_collector_window_filtering():
    collector = make_collector()
    assert collector.n_issued == 5


def test_collector_counts():
    collector = make_collector()
    assert collector.n_committed == 2
    assert collector.n_aborted == 2
    assert collector.n_rejected == 1
    assert collector.n_spec == 2
    assert collector.n_spec_incorrect == 1


def test_collector_rates():
    collector = make_collector()
    assert collector.commit_tps() == pytest.approx(0.2)
    assert collector.commit_tps(hot=True) == pytest.approx(0.1)
    assert collector.abort_tps() == pytest.approx(0.2)
    assert collector.abort_rate() == pytest.approx(2 / 4)
    assert collector.spec_fraction() == pytest.approx(1 / 2)
    assert collector.spec_incorrect_fraction() == pytest.approx(1 / 2)


def test_collector_latencies():
    collector = make_collector()
    times = collector.response_times()
    # committed + spec reporters: 200, 10, 10 (the incorrect spec also
    # reported commit to the user)
    assert sorted(times) == [10.0, 10.0, 200.0]
    assert collector.mean_response_ms() == pytest.approx(220.0 / 3)
    assert collector.percentile_response_ms(0.0) == 10.0
    cdf = collector.response_cdf([5.0, 10.0, 500.0])
    assert cdf == [0.0, pytest.approx(2 / 3), 1.0]


def test_collector_latencies_excluding_spec():
    collector = make_collector()
    times = collector.response_times(include_spec=False)
    assert sorted(times) == [200.0, 400.0, 500.0]


def test_collector_outcome_breakdown_sums_to_one():
    collector = make_collector()
    breakdown = collector.outcome_breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["rejected"] == pytest.approx(0.2)


def test_collector_commit_type_breakdown():
    collector = make_collector()
    breakdown = collector.commit_type_breakdown()
    assert breakdown["commits"] == pytest.approx(0.1)
    assert breakdown["spec"] == pytest.approx(0.1)
    assert breakdown["incorrect_spec"] == pytest.approx(0.1)
    assert breakdown["aborts"] == pytest.approx(0.1)
    assert breakdown["rejected"] == pytest.approx(0.1)


def test_collector_validation():
    with pytest.raises(ValueError):
        MetricsCollector(10.0, 10.0)
    collector = make_collector()
    with pytest.raises(ValueError):
        collector.percentile_response_ms(2.0)


# ---------------------------------------------------------------- report


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.123]],
                         title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "0.123" in lines[-1]


def test_format_table_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


# ---------------------------------------------------------------- experiments


def small_config(**kwargs):
    defaults = dict(
        name="test", seed=7, topology="uniform", n_datacenters=3,
        uniform_one_way_ms=30.0, sigma=0.05, spike_prob=0.0,
        partitions_per_dc=1, n_items=2_000, rate_tps=40.0,
        warmup_ms=5_000.0, duration_ms=10_000.0, drain_ms=8_000.0,
        oracle_samples=400)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def test_planet_experiment_runs():
    result = Experiment(small_config(system="planet")).run()
    summary = result.summary()
    assert summary["issued"] > 200
    assert summary["commit_tps"] > 25
    assert summary["abort_rate"] < 0.2


def test_traditional_experiment_runs():
    result = Experiment(small_config(system="traditional")).run()
    assert result.metrics.n_issued > 200
    assert result.metrics.commit_tps() > 25


def test_spec_commits_reduce_latency():
    plain = Experiment(small_config(system="planet")).run()
    spec = Experiment(small_config(system="planet",
                                   spec_threshold=0.95)).run()
    assert (spec.metrics.mean_response_ms()
            < plain.metrics.mean_response_ms())
    assert spec.metrics.spec_fraction() > 0.5
    assert spec.initial_likelihoods  # model was consulted


def test_admission_control_rejects_under_contention():
    config = small_config(system="planet", n_items=200,
                          hotspot_size=5, rate_tps=80.0,
                          min_items=1, max_items=1,
                          admission=DynamicPolicy(90))
    result = Experiment(config).run()
    assert result.metrics.n_rejected > 0


def test_same_seed_reproduces_exactly():
    a = Experiment(small_config()).run()
    b = Experiment(small_config()).run()
    assert a.summary() == b.summary()


def test_different_seeds_differ():
    a = Experiment(small_config(seed=1)).run()
    b = Experiment(small_config(seed=2)).run()
    assert a.summary() != b.summary()


def test_measured_stats_mode_runs():
    config = small_config(system="planet", spec_threshold=0.95,
                          stats_mode="measured",
                          ping_interval_ms=500.0)
    result = Experiment(config).run()
    assert result.metrics.spec_fraction() > 0.3


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        Experiment(small_config(system="mystery"))


def test_unknown_topology_rejected():
    with pytest.raises(ValueError):
        Experiment(small_config(topology="torus"))


def test_distributed_stats_mode_runs():
    config = small_config(system="planet", spec_threshold=0.95,
                          stats_mode="distributed",
                          ping_interval_ms=500.0)
    result = Experiment(config).run()
    assert result.metrics.spec_fraction() > 0.3


def test_render_bars():
    from repro.harness.report import render_bars
    chart = render_bars(["a", "bb"], [10.0, 5.0], width=10, title="T",
                        unit=" tps")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    import pytest
    with pytest.raises(ValueError):
        render_bars(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        render_bars([], [])


def test_render_bars_zero_peak():
    from repro.harness.report import render_bars
    chart = render_bars(["a"], [0.0])
    assert "#" not in chart


def test_render_curves():
    from repro.harness.report import render_curves
    points = [0, 1, 2, 3]
    chart = render_curves(points, {"up": [0, 1, 2, 3],
                                   "down": [3, 2, 1, 0]},
                          width=20, height=8, title="curves")
    assert "curves" in chart
    assert "* down" in chart and "o up" in chart
    import pytest
    with pytest.raises(ValueError):
        render_curves([], {})
    with pytest.raises(ValueError):
        render_curves(points, {"bad": [1, 2]})


def test_mixed_read_write_workload():
    config = small_config(system="planet", read_fraction=0.5)
    result = Experiment(config).run()
    assert len(result.read_latencies_ms) > 50
    # Local reads resolve in ~a millisecond, far below commit latency.
    mean_read = (sum(result.read_latencies_ms)
                 / len(result.read_latencies_ms))
    assert mean_read < 20.0
    assert result.metrics.n_committed > 50


def test_mixed_workload_traditional():
    config = small_config(system="traditional", read_fraction=0.3)
    result = Experiment(config).run()
    assert len(result.read_latencies_ms) > 20
    assert result.metrics.n_committed > 50


def test_zipfian_workload_runs():
    config = small_config(system="planet", zipf_s=0.99,
                          spec_threshold=0.95)
    result = Experiment(config).run()
    assert result.metrics.n_committed > 50
    # The skew creates real contention on the head items.
    assert result.metrics.n_aborted > 0


def test_zipf_and_hotspot_mutually_exclusive():
    config = small_config(zipf_s=0.99, hotspot_size=10)
    with pytest.raises(ValueError):
        Experiment(config)


def test_model_refresh_rebuilds_periodically():
    config = small_config(system="planet", spec_threshold=0.95,
                          stats_mode="measured", ping_interval_ms=500.0,
                          model_refresh_ms=2_000.0)
    experiment = Experiment(config)
    result = experiment.run()
    # 10s measurement window / 2s refresh -> several rebuilds.
    assert experiment.model_refreshes >= 3
    assert result.metrics.n_committed > 50
