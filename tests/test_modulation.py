"""Rate modulation: factor math and determinism guarantees.

The wrapper contract is strict: unwrapped arrival processes keep
their historical draw path bit-for-bit (golden digests), and a
modulated process is exactly as deterministic as its base — the same
named stream yields the same gap sequence, rescaled by a pure
function of virtual time.
"""

import math
import random

import pytest

from repro.workload.load import PoissonArrivals
from repro.workload.modulation import (
    MIN_FACTOR,
    ComposedModulation,
    DiurnalModulation,
    FlashCrowdModulation,
    ModulatedArrivals,
)


# ---------------------------------------------------------------- factors


def test_diurnal_factor_peaks_and_troughs():
    mod = DiurnalModulation(period_ms=1_000.0, amplitude=0.4)
    assert mod.factor(0.0) == pytest.approx(1.0)
    assert mod.factor(250.0) == pytest.approx(1.4)
    assert mod.factor(750.0) == pytest.approx(0.6)
    assert mod.factor(1_000.0) == pytest.approx(1.0, abs=1e-9)


def test_diurnal_phase_shifts_the_cycle():
    base = DiurnalModulation(period_ms=1_000.0, amplitude=0.4)
    shifted = DiurnalModulation(period_ms=1_000.0, amplitude=0.4,
                                phase_ms=250.0)
    assert shifted.factor(500.0) == pytest.approx(base.factor(250.0))


def test_diurnal_rejects_bad_parameters():
    with pytest.raises(ValueError):
        DiurnalModulation(period_ms=0.0, amplitude=0.2)
    with pytest.raises(ValueError):
        DiurnalModulation(period_ms=100.0, amplitude=1.0)


def test_flash_crowd_is_a_step():
    mod = FlashCrowdModulation(start_ms=100.0, end_ms=200.0, magnitude=3.0)
    assert mod.factor(99.9) == 1.0
    assert mod.factor(100.0) == 3.0
    assert mod.factor(199.9) == 3.0
    assert mod.factor(200.0) == 1.0


def test_composed_multiplies():
    mod = ComposedModulation((
        DiurnalModulation(period_ms=1_000.0, amplitude=0.5),
        FlashCrowdModulation(start_ms=0.0, end_ms=10_000.0, magnitude=2.0),
    ))
    assert mod.factor(250.0) == pytest.approx(1.5 * 2.0)
    assert "diurnal" in mod.describe() and "flash" in mod.describe()


# ---------------------------------------------------------------- wrapper


def test_modulated_gap_is_base_gap_rescaled():
    base = PoissonArrivals(rate_tps=50.0)
    mod = ModulatedArrivals(
        base, FlashCrowdModulation(start_ms=0.0, end_ms=1e9, magnitude=4.0))
    raw = base.next_interarrival_ms(random.Random(3))
    scaled = mod.next_interarrival_ms_at(random.Random(3), now_ms=0.0)
    assert scaled == pytest.approx(raw / 4.0)


def test_modulated_factor_floor_prevents_infinite_gaps():
    class Zero(DiurnalModulation):
        def factor(self, t_ms):
            return 0.0

    mod = ModulatedArrivals(PoissonArrivals(rate_tps=50.0),
                            Zero(period_ms=1.0, amplitude=0.0))
    gap = mod.next_interarrival_ms_at(random.Random(3), now_ms=0.0)
    assert math.isfinite(gap)
    raw = PoissonArrivals(rate_tps=50.0).next_interarrival_ms(
        random.Random(3))
    assert gap == pytest.approx(raw / MIN_FACTOR)


def test_modulated_draws_are_deterministic():
    def draw():
        mod = ModulatedArrivals(
            PoissonArrivals(rate_tps=50.0),
            DiurnalModulation(period_ms=4_000.0, amplitude=0.3))
        rng = random.Random(17)
        gaps, t = [], 0.0
        for _ in range(200):
            gap = mod.next_interarrival_ms_at(rng, now_ms=t)
            gaps.append(gap)
            t += gap
        return gaps

    assert draw() == draw()


def test_batch_rescaling_matches_sequential_walk():
    numpy = pytest.importorskip("numpy")
    mod = ModulatedArrivals(
        PoissonArrivals(rate_tps=50.0),
        DiurnalModulation(period_ms=4_000.0, amplitude=0.3))
    batch = mod.batch_interarrivals_at(
        numpy.random.default_rng(9), size=100, now_ms=500.0)
    base_gaps = PoissonArrivals(rate_tps=50.0).batch_interarrivals(
        numpy.random.default_rng(9), 100)
    t = 500.0
    expected = []
    for gap in base_gaps:
        gap = float(gap) / max(mod.modulation.factor(t), MIN_FACTOR)
        expected.append(gap)
        t += gap
    assert list(batch) == pytest.approx(expected)


def test_unwrapped_arrivals_expose_no_timed_api():
    # Load engines probe for the time-aware methods; a plain process
    # must not grow them, or the historical draw path (and with it the
    # golden digests) would change.
    base = PoissonArrivals(rate_tps=50.0)
    assert not hasattr(base, "next_interarrival_ms_at")
    assert not hasattr(base, "batch_interarrivals_at")
