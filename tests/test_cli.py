"""Tests for the command-line experiment runner."""

import argparse

import pytest

from repro.core.admission import DynamicPolicy, FixedPolicy
from repro.harness.cli import build_parser, main, parse_admission


def test_parse_admission_variants():
    assert parse_admission(None) is None
    assert parse_admission("none") is None
    dyn = parse_admission("dyn:50")
    assert isinstance(dyn, DynamicPolicy)
    assert dyn.threshold == pytest.approx(0.5)
    fixed = parse_admission("fixed:40:20")
    assert isinstance(fixed, FixedPolicy)
    assert fixed.threshold == pytest.approx(0.4)
    assert fixed.attempt_rate == pytest.approx(0.2)


def test_parse_admission_rejects_garbage():
    with pytest.raises(argparse.ArgumentTypeError):
        parse_admission("dyn")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_admission("fixed:40")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_admission("lru:9")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_admission("dyn:150")  # threshold out of range


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "planet"
    assert args.topology == "ec2"
    assert not args.compare


def test_cli_single_run(capsys):
    code = main(["--topology", "uniform", "--items", "500",
                 "--rate", "30", "--warmup", "3", "--duration", "6",
                 "--service-ms", "0", "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "commit_tps" in output
    assert "planet" in output


def test_cli_compare_run(capsys):
    code = main(["--compare", "--topology", "uniform", "--items", "500",
                 "--rate", "30", "--warmup", "3", "--duration", "6",
                 "--service-ms", "0", "--spec", "0.95",
                 "--admission", "dyn:50", "--seed", "4"])
    assert code == 0
    output = capsys.readouterr().out
    assert "traditional" in output and "planet" in output
    assert "spec_fraction" in output
