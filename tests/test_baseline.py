"""Tests for the traditional (fire-and-hope) baseline model."""

import pytest

from repro.baseline import TraditionalClient, TraditionalOutcome
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_env(one_way=50.0, mastership="hash", seed=33):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=one_way, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      mastership=mastership)
    cluster.load({f"item:{i}": 100 for i in range(10)})
    return env, cluster


def test_commit_within_timeout():
    env, cluster = make_env(one_way=20.0)
    client = TraditionalClient(cluster, "app", 0)
    txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=5_000)
    env.run()
    assert txn.app_outcome is TraditionalOutcome.COMMITTED
    assert txn.true_committed
    assert txn.response_time_ms < 5_000


def test_unknown_after_timeout():
    env, cluster = make_env(one_way=50.0)
    client = TraditionalClient(cluster, "app", 0)
    txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=10)
    env.run()
    # The application saw the timeout exception: outcome unknowable.
    assert txn.app_outcome is TraditionalOutcome.UNKNOWN
    assert txn.response_time_ms == pytest.approx(10.0)
    # Underneath, the transaction still committed — but a JDBC client
    # has no way to learn this (the paper's core complaint).
    assert txn.true_committed
    assert txn.true_decided_ms > txn.start_ms + 10


def test_abort_within_timeout():
    env, cluster = make_env(one_way=20.0)
    client_a = TraditionalClient(cluster, "a", 0)
    client_b = TraditionalClient(cluster, "b", 1)
    txn_a = client_a.execute([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=5_000)
    txn_b = client_b.execute([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=5_000)
    env.run()
    outcomes = sorted([txn_a.app_outcome.value, txn_b.app_outcome.value])
    assert outcomes == ["aborted", "committed"]


def test_returned_event_fires_once():
    env, cluster = make_env(one_way=20.0)
    client = TraditionalClient(cluster, "app", 0)
    seen = []

    def driver(env):
        txn = client.execute([WriteOp("item:1", Update.delta(-1))],
                             timeout_ms=5_000)
        outcome = yield txn.returned_event
        seen.append((env.now, outcome))

    env.process(driver(env))
    env.run()
    assert len(seen) == 1
    assert seen[0][1] is TraditionalOutcome.COMMITTED


def test_timeout_validation():
    env, cluster = make_env()
    client = TraditionalClient(cluster, "app", 0)
    with pytest.raises(ValueError):
        client.execute([WriteOp("item:1", Update.delta(-1))], timeout_ms=0)
