"""Unit tests for the repro.obs building blocks: the metrics registry,
span recorder, stage chain, and exporters."""

import json

import pytest

from repro.obs import (
    STAGES,
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    span_id_for,
    stage_breakdown,
    trace_id_for,
)
from repro.obs.export import breakdown_json, breakdown_table, stage_summary
from repro.obs.record import ObsSession, artifact_digests, load_artifacts


# -- metrics registry -------------------------------------------------------

def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.inc("a.count")
    registry.inc("a.count", 2.0)
    registry.inc("a.count", label="x")
    registry.set_gauge("a.gauge", 4.5)
    registry.observe("a.hist", 3.0)
    registry.observe("a.hist", 30.0, label="y")
    assert registry.counter_value("a.count") == 3.0
    assert registry.counter_value("a.count", label="x") == 1.0
    assert registry.counter("a.count").total() == 4.0
    assert registry.gauge_value("a.gauge") == 4.5
    hist = registry.histogram("a.hist")
    assert hist.count() == 1
    assert hist.count("y") == 1
    assert hist.labeled("y").mean == 30.0
    assert registry.names() == ["a.count", "a.gauge", "a.hist"]
    assert len(registry) == 3


def test_histogram_quantiles_and_bounds():
    registry = MetricsRegistry()
    hist = registry.histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 0.7, 5.0, 50.0, 500.0):
        hist.observe(value)
    series = hist.labeled()
    assert series.count == 5
    assert series.min == 0.5
    assert series.max == 500.0
    assert series.quantile(0.0) == 0.0 if series.count == 0 else True
    assert series.quantile(0.4) == 1.0      # two samples in [0, 1]
    assert series.quantile(1.0) == 500.0    # overflow reports exact max
    with pytest.raises(ValueError):
        registry.histogram("h", bounds=(2.0, 3.0))  # conflicting bounds
    with pytest.raises(ValueError):
        registry.histogram("bad", bounds=(3.0, 2.0))


def test_registry_dump_is_deterministic():
    def build():
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first", label="b")
        registry.inc("a.first", label="a")
        registry.observe("m.hist", 7.0)
        return registry

    first, second = build(), build()
    assert first.dump_json() == second.dump_json()
    assert first.digest() == second.digest()
    dump = first.dump()
    assert set(dump) == {"counters", "gauges", "histograms"}
    assert list(dump["counters"]) == sorted(dump["counters"])
    assert "a.first" in first.render()


# -- spans ------------------------------------------------------------------

def test_span_ids_are_deterministic_and_distinct():
    trace = trace_id_for("tx-1")
    assert trace == trace_id_for("tx-1")
    assert trace != trace_id_for("tx-2")
    span = span_id_for(trace, "round", "k/1")
    assert span == span_id_for(trace, "round", "k/1")
    assert span != span_id_for(trace, "round", "k/2")
    assert span != span_id_for(trace, "other", "k/1")


def test_span_recorder_tree_and_finish_open():
    recorder = SpanRecorder()
    root = recorder.start("t1", "tx", "client", 0.0, "tx-1")
    child = recorder.child(root.ctx, "round", "leader", 1.0, "k/1")
    point = recorder.point(child.ctx, "phase2b", "replica", 2.0, "k/1/r")
    assert child.parent_id == root.span_id
    assert point.parent_id == child.span_id
    assert point.finished and point.duration_ms == 0.0
    assert recorder.get(child.span_id) is child
    assert len(recorder) == 3
    closed = recorder.finish_open(5.0)
    assert closed == 2  # root + child were open
    assert root.end_ms == 5.0 and root.attrs["unfinished"] is True
    by_trace = recorder.by_trace()
    assert set(by_trace) == {"t1"} and len(by_trace["t1"]) == 3
    assert recorder.digest() == recorder.digest()


def test_tx_span_set_stage_sum_equals_e2e():
    registry = MetricsRegistry()
    recorder = SpanRecorder(metrics=registry)
    chain = recorder.begin_tx("tx-1", "client", 10.0, keys=("k",))
    chain.advance("propose", 12.0)
    chain.advance("accept", 15.0)
    chain.advance("learn", 40.0)
    chain.decided(55.0, committed=True)
    chain.expect_visibility(2)
    chain.visibility_done(70.0)
    chain.visibility_done(80.0)
    assert chain.closed
    assert chain.root.duration_ms == pytest.approx(70.0)
    stage_sum = sum(span.duration_ms for span in chain.stage_spans)
    assert stage_sum == pytest.approx(chain.root.duration_ms)
    assert [span.name for span in chain.stage_spans] == list(STAGES)
    assert registry.histogram("tx.e2e_ms").count() == 1
    assert registry.histogram("tx.stage_ms").count("learn") == 1


def test_tx_span_set_skipped_stages_and_cancel():
    recorder = SpanRecorder()
    # Straight to decided: propose/accept/learn become zero-length.
    chain = recorder.begin_tx("tx-2", "client", 0.0)
    chain.decided(9.0, committed=False)
    chain.expect_visibility(1)
    chain.visibility_done(12.0)
    durations = {span.name: span.duration_ms for span in chain.stage_spans}
    assert durations["admission"] == pytest.approx(9.0)
    assert durations["propose"] == durations["accept"] == 0.0
    assert durations["visibility"] == pytest.approx(3.0)
    # Cancelled during admission: one stage, root closed immediately.
    cancelled = recorder.begin_tx("tx-3", "client", 0.0)
    cancelled.cancelled(4.0)
    assert cancelled.closed
    assert cancelled.root.attrs["cancelled"] is True
    assert len(cancelled.stage_spans) == 1
    # Out-of-order advance is a no-op, not a crash.
    chain.advance("propose", 99.0)


# -- exporters --------------------------------------------------------------

def _sample_spans():
    recorder = SpanRecorder()
    chain = recorder.begin_tx("tx-9", "client", 0.0, keys=("k1", "k2"))
    chain.advance("propose", 1.0)
    chain.advance("accept", 2.0)
    recorder.point(chain.ctx, "phase2b", "replica-1", 2.5, "k1/1/r1")
    chain.advance("learn", 3.0)
    chain.decided(4.0, committed=True)
    chain.expect_visibility(1)
    chain.visibility_done(6.0)
    return recorder.dump()


def test_chrome_trace_structure():
    trace = chrome_trace(_sample_spans(), label="unit")
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert any(e["name"] == "process_name" for e in metadata)
    assert {e["name"] for e in complete} >= {"tx", "admission", "phase2b"}
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["tid"], int) and event["pid"] == 1
        assert "span_id" in event["args"]
    # One thread per node.
    tids = {e["tid"] for e in complete}
    assert len(tids) == 2  # client + replica-1
    json.dumps(trace)  # must be JSON-serializable as-is


def test_stage_breakdown_sums_and_table():
    breakdowns = stage_breakdown(_sample_spans())
    assert len(breakdowns) == 1
    tx = breakdowns[0]
    assert tx.txid == "tx-9"
    assert tx.committed is True and tx.complete
    assert set(tx.stage_ms) == set(STAGES)
    assert tx.stage_sum_ms == pytest.approx(tx.e2e_ms, abs=1.0)
    assert "client" in tx.nodes and "replica-1" in tx.nodes
    table = breakdown_table(breakdowns)
    assert "tx-9" in table and "commit" in table
    parsed = json.loads(breakdown_json(breakdowns))
    assert parsed[0]["txid"] == "tx-9"
    means = stage_summary(breakdowns)
    assert means["e2e"] == pytest.approx(tx.e2e_ms)


# -- session & artifacts ----------------------------------------------------

def test_obs_session_artifacts_roundtrip(tmp_path):
    class FakeEnv:
        metrics = None
        spans = None
        now = 0.0

    env = FakeEnv()
    session = ObsSession()
    session.install(env)
    env.metrics.inc("x")
    env.spans.begin_tx("tx-1", "n", 0.0)
    env.now = 5.0
    session.detach(env)
    assert env.metrics is None and env.spans is None
    path = tmp_path / "run.obs.json"
    session.save(str(path), meta={"seed": 7})
    loaded = load_artifacts(str(path))
    assert loaded["meta"]["seed"] == 7
    assert loaded["version"] == 1
    assert artifact_digests(loaded) == artifact_digests(
        session.artifacts(meta={"seed": 7}))
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        load_artifacts(str(bad))


def test_obs_session_halves_can_be_disabled():
    metrics_only = ObsSession(spans=False)
    assert metrics_only.registry is not None
    assert metrics_only.recorder is None
    spans_only = ObsSession(metrics=False)
    assert spans_only.registry is None
    assert spans_only.recorder is not None
    artifacts = spans_only.artifacts()
    assert artifacts["metrics"] == {} and artifacts["spans"] == []
