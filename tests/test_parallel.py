"""repro.harness.parallel: order, determinism, and serial fallback."""

import os

import pytest

from repro.harness.parallel import (
    default_pool_size,
    parallel_map,
    run_experiments,
)
from repro.harness.experiment import ExperimentConfig


def _square(value):
    return value * value


def test_serial_path_preserves_order_and_streams_results():
    seen = []
    results = parallel_map(_square, [3, 1, 2], processes=1,
                           on_result=seen.append)
    assert results == [9, 1, 4]
    assert seen == [9, 1, 4]


def test_pooled_path_matches_serial():
    items = list(range(20))
    serial = parallel_map(_square, items, processes=1)
    pooled = parallel_map(_square, items, processes=2)
    assert pooled == serial


def test_pooled_on_result_arrives_in_input_order():
    seen = []
    parallel_map(_square, [5, 4, 3, 2, 1], processes=2,
                 on_result=seen.append)
    assert seen == [25, 16, 9, 4, 1]


def test_empty_input():
    assert parallel_map(_square, [], processes=4) == []


def test_single_cpu_host_falls_back_to_serial(monkeypatch):
    """On a 1-CPU machine the pool is skipped outright: requesting many
    workers must never construct a Pool, and the results (and their
    streaming order) must be exactly the serial loop's."""
    import repro.harness.parallel as parallel_module

    def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("Pool constructed on a single-CPU host")

    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(
        parallel_module.multiprocessing, "Pool", _no_pool)
    seen = []
    results = parallel_map(_square, [4, 2, 3], processes=8,
                           on_result=seen.append)
    assert results == [_square(v) for v in [4, 2, 3]]
    assert seen == results


def test_pool_capped_at_item_count(monkeypatch):
    """One item never pays pool overhead, however many workers asked."""
    import repro.harness.parallel as parallel_module

    def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("Pool constructed for a single item")

    monkeypatch.setattr(
        parallel_module.multiprocessing, "Pool", _no_pool)
    assert parallel_map(_square, [7], processes=8) == [49]


def test_default_pool_size_env_override(monkeypatch):
    monkeypatch.setenv("PLANET_POOL", "3")
    assert default_pool_size() == 3
    monkeypatch.delenv("PLANET_POOL")
    assert default_pool_size() == (os.cpu_count() or 1)


def test_run_experiments_returns_configs_in_order():
    configs = [
        ExperimentConfig(
            name=f"tiny-{seed}", seed=seed, system="traditional",
            topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
            partitions_per_dc=1, n_items=50, rate_tps=50.0,
            warmup_ms=200.0, duration_ms=400.0, drain_ms=400.0)
        for seed in (1, 2)
    ]
    results = run_experiments(configs, processes=2)
    assert [result.config.name for result in results] == ["tiny-1", "tiny-2"]
    for result in results:
        assert result.metrics.n_issued >= 0
