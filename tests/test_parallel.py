"""repro.harness.parallel: order, determinism, and serial fallback."""

import dataclasses
import os

import pytest

from repro.harness.parallel import (
    WorkerPool,
    decode_records,
    decode_result,
    default_pool_size,
    encode_records,
    encode_result,
    experiment_cost_hint,
    parallel_map,
    run_experiments,
    worker_context,
)
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs.txmetrics import TxRecord


def _square(value):
    return value * value


def test_serial_path_preserves_order_and_streams_results():
    seen = []
    results = parallel_map(_square, [3, 1, 2], processes=1,
                           on_result=seen.append)
    assert results == [9, 1, 4]
    assert seen == [9, 1, 4]


def test_pooled_path_matches_serial():
    items = list(range(20))
    serial = parallel_map(_square, items, processes=1)
    pooled = parallel_map(_square, items, processes=2)
    assert pooled == serial


def test_pooled_on_result_arrives_in_input_order():
    seen = []
    parallel_map(_square, [5, 4, 3, 2, 1], processes=2,
                 on_result=seen.append)
    assert seen == [25, 16, 9, 4, 1]


def test_empty_input():
    assert parallel_map(_square, [], processes=4) == []


def test_single_cpu_host_falls_back_to_serial(monkeypatch):
    """On a 1-CPU machine the pool is skipped outright: requesting many
    workers must never construct a Pool, and the results (and their
    streaming order) must be exactly the serial loop's."""
    import repro.harness.parallel as parallel_module

    def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("Pool constructed on a single-CPU host")

    monkeypatch.setattr(parallel_module, "effective_cpu_count", lambda: 1)
    monkeypatch.setattr(
        parallel_module.multiprocessing, "Pool", _no_pool)
    seen = []
    results = parallel_map(_square, [4, 2, 3], processes=8,
                           on_result=seen.append)
    assert results == [_square(v) for v in [4, 2, 3]]
    assert seen == results


def test_pool_capped_at_item_count(monkeypatch):
    """One item never pays pool overhead, however many workers asked."""
    import repro.harness.parallel as parallel_module

    def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("Pool constructed for a single item")

    monkeypatch.setattr(
        parallel_module.multiprocessing, "Pool", _no_pool)
    assert parallel_map(_square, [7], processes=8) == [49]


def test_default_pool_size_env_override(monkeypatch):
    from repro.harness.parallel import effective_cpu_count

    monkeypatch.setenv("PLANET_POOL", "3")
    assert default_pool_size() == 3
    monkeypatch.delenv("PLANET_POOL")
    # Unset, the default is the *affinity* mask (what this process may
    # actually run on), not the machine-wide cpu_count.
    assert default_pool_size() == effective_cpu_count()


def test_effective_cpu_count_uses_affinity(monkeypatch):
    """A container pinned to one core must size pools at 1, no matter
    how many CPUs the host advertises via cpu_count."""
    import repro.harness.parallel as parallel_module

    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(parallel_module.os, "sched_getaffinity",
                            lambda pid: {0})
        from repro.harness.parallel import effective_cpu_count
        assert effective_cpu_count() == 1
    else:  # pragma: no cover - non-Linux fallback
        from repro.harness.parallel import effective_cpu_count
        assert effective_cpu_count() == 64


def test_cgroup_cpu_quota_parses_cpu_max(tmp_path):
    from repro.harness.parallel import _cgroup_cpu_quota

    def write(content):
        path = tmp_path / "cpu.max"
        path.write_text(content)
        return str(path)

    assert _cgroup_cpu_quota(write("200000 100000\n")) == 2.0
    assert _cgroup_cpu_quota(write("150000 100000\n")) == 1.5
    # "max" means unlimited; the period field defaults to 100ms.
    assert _cgroup_cpu_quota(write("max 100000\n")) is None
    assert _cgroup_cpu_quota(write("100000\n")) == 1.0
    # Missing, garbage, or nonsensical content never raises.
    assert _cgroup_cpu_quota(str(tmp_path / "absent")) is None
    assert _cgroup_cpu_quota(write("")) is None
    assert _cgroup_cpu_quota(write("banana split\n")) is None
    assert _cgroup_cpu_quota(write("-100000 100000\n")) is None
    assert _cgroup_cpu_quota(write("100000 0\n")) is None


def test_effective_cpu_count_caps_at_cgroup_quota(monkeypatch):
    """A time-share limit (docker --cpus=2 on a wide host) must cap the
    pool even though the affinity mask still shows every core."""
    import repro.harness.parallel as parallel_module
    from repro.harness.parallel import effective_cpu_count

    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(parallel_module.os, "sched_getaffinity",
                            lambda pid: set(range(64)))
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
    monkeypatch.setattr(parallel_module, "_cgroup_cpu_quota", lambda: 2.0)
    assert effective_cpu_count() == 2
    # The quota floors to whole workers, never below one.
    monkeypatch.setattr(parallel_module, "_cgroup_cpu_quota", lambda: 2.9)
    assert effective_cpu_count() == 2
    monkeypatch.setattr(parallel_module, "_cgroup_cpu_quota", lambda: 0.5)
    assert effective_cpu_count() == 1
    # No quota file: affinity alone decides.
    monkeypatch.setattr(parallel_module, "_cgroup_cpu_quota", lambda: None)
    assert effective_cpu_count() == 64


def test_run_experiments_returns_configs_in_order():
    configs = [
        ExperimentConfig(
            name=f"tiny-{seed}", seed=seed, system="traditional",
            topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
            partitions_per_dc=1, n_items=50, rate_tps=50.0,
            warmup_ms=200.0, duration_ms=400.0, drain_ms=400.0)
        for seed in (1, 2)
    ]
    results = run_experiments(configs, processes=2)
    assert [result.config.name for result in results] == ["tiny-1", "tiny-2"]
    for result in results:
        assert result.metrics.n_issued >= 0


# -- persistent pool: serial equivalence ---------------------------------

def _probe_configs(seeds=(3, 4, 5)):
    return [
        ExperimentConfig(
            name=f"pool-probe-{seed}", seed=seed, system="traditional",
            topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
            partitions_per_dc=1, n_items=100, rate_tps=100.0,
            warmup_ms=500.0, duration_ms=1_000.0, drain_ms=1_000.0)
        for seed in seeds
    ]


def _fingerprint(result):
    return (result.summary(),
            [dataclasses.astuple(rec) for rec in result.metrics.records])


def test_persistent_pool_matches_serial_across_reuse():
    """The ISSUE's headline guarantee: a persistent pool (forked once,
    reused across map calls, columnar transfer) yields byte-identical
    results to the serial loop — on every reuse, for every seed."""
    configs = _probe_configs()
    serial = [_fingerprint(r) for r in run_experiments(
        configs, processes=1)]
    with WorkerPool(processes=2, oversubscribe=True) as pool:
        for _ in range(2):  # reuse the same workers across sweep points
            pooled = [_fingerprint(r) for r in run_experiments(
                configs, pool=pool)]
            assert pooled == serial


def test_persistent_pool_streams_in_input_order():
    configs = _probe_configs(seeds=(3, 4))
    seen = []
    with WorkerPool(processes=2, oversubscribe=True) as pool:
        results = run_experiments(configs, pool=pool,
                                  on_result=seen.append)
    assert [r.config.name for r in results] == ["pool-probe-3",
                                                "pool-probe-4"]
    assert seen == results  # same objects, streamed, in input order


# -- columnar codec ------------------------------------------------------

def test_record_codec_roundtrips_all_field_shapes():
    records = [
        TxRecord(system="planet", issued_ms=1.5, timeout_ms=200.0,
                 hot=True, size=3, admitted=True, accepted_ms=10.25,
                 decided_ms=90.0, committed=True, spec_ms=12.0,
                 spec_incorrect=False, app_outcome="committed",
                 stage_fired="a1", stage_fired_ms=12.0),
        # every optional None, tri-state committed unknown
        TxRecord(system="traditional", issued_ms=2.0, timeout_ms=150.0,
                 hot=False, size=1),
        # committed=False (distinct from None on the wire)
        TxRecord(system="planet", issued_ms=3.0, timeout_ms=150.0,
                 hot=False, size=2, admitted=False, committed=False,
                 app_outcome="aborted"),
    ]
    rebuilt = decode_records(encode_records(records))
    assert [dataclasses.astuple(r) for r in rebuilt] == \
        [dataclasses.astuple(r) for r in records]
    assert rebuilt[1].committed is None
    assert rebuilt[2].committed is False
    assert decode_records(encode_records([])) == []


def test_result_codec_roundtrips_whole_experiment():
    result = Experiment(_probe_configs(seeds=(3,))[0]).run()
    rebuilt = decode_result(encode_result(result))
    assert _fingerprint(rebuilt) == _fingerprint(result)
    assert rebuilt.config == result.config
    assert rebuilt.initial_likelihoods == result.initial_likelihoods
    assert rebuilt.read_latencies_ms == result.read_latencies_ms


# -- work distribution ---------------------------------------------------

class _FakePool:
    """Stands in for multiprocessing.Pool: records submission order and
    completes tasks in deliberately scrambled (reverse) order."""

    def __init__(self):
        self.submitted = []

    def imap_unordered(self, fn, tasks, chunksize=1):
        tasks = list(tasks)
        assert chunksize == 1  # per-item dispatch IS the work stealing
        self.submitted = [task[1] for task in tasks]
        for task in reversed(tasks):
            yield fn(task)

    def close(self):
        pass

    def join(self):
        pass


def _fake_pooled():
    pool = WorkerPool(processes=1)
    fake = _FakePool()
    pool._pool = fake
    pool.processes = 2
    return pool, fake


def test_lpt_submission_order_with_skewed_costs():
    """With a cost hint, predicted-longest items are submitted first
    (ties keep input order) so stragglers never start last."""
    pool, fake = _fake_pooled()
    costs = [1.0, 9.0, 3.0, 9.0, 0.5]
    results = pool.map(_square, [0, 1, 2, 3, 4],
                       cost_hint=lambda i: costs[i])
    assert fake.submitted == [1, 3, 2, 0, 4]
    assert results == [0, 1, 4, 9, 16]  # reassembled by input position


def test_scrambled_completion_still_streams_in_input_order():
    pool, fake = _fake_pooled()
    seen = []
    results = pool.map(_square, [3, 1, 2], on_result=seen.append)
    assert fake.submitted == [0, 1, 2]  # no hint: input order
    assert results == [9, 1, 4]
    assert seen == [9, 1, 4]  # despite reverse completion order


def test_experiment_cost_hint_ranks_by_event_volume():
    small, large = _probe_configs(seeds=(3, 4))
    large = dataclasses.replace(large, duration_ms=10_000.0,
                                rate_tps=500.0)
    assert experiment_cost_hint(large) > experiment_cost_hint(small)


# -- worker context broadcast --------------------------------------------

def _read_context(item):
    return item, worker_context()


def test_worker_context_broadcast_to_forked_workers():
    with WorkerPool(processes=2, context={"tag": 7},
                    oversubscribe=True) as pool:
        results = pool.map(_read_context, [1, 2, 3])
    assert results == [(1, {"tag": 7}), (2, {"tag": 7}), (3, {"tag": 7})]


def test_worker_context_installed_on_serial_fallback():
    with WorkerPool(processes=1, context={"tag": 9}) as pool:
        assert pool.effective == 1
        results = pool.map(_read_context, [1])
    assert results == [(1, {"tag": 9})]
