"""Framework behaviour: suppressions, scoping, CLI exit codes, JSON."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    analyze_paths,
    analyze_source,
    module_name_for,
)
from repro.analysis.__main__ import main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


# -- suppressions -----------------------------------------------------------


def test_line_suppressions_respected():
    path = str(FIXTURES / "suppress_fixture.py")
    report = analyze_paths([path])
    assert [d.code for d in report.diagnostics] == ["DET001"]
    assert report.suppressed == 2


def test_no_suppress_reveals_everything():
    path = str(FIXTURES / "suppress_fixture.py")
    report = analyze_paths([path], respect_suppressions=False)
    assert [d.code for d in report.diagnostics] == ["DET001"] * 3
    assert report.suppressed == 0


def test_file_level_suppression_filters_one_code():
    path = str(FIXTURES / "suppress_file_fixture.py")
    report = analyze_paths([path])
    assert [d.code for d in report.diagnostics] == ["DET002"]
    assert report.suppressed == 1


# -- module naming and scoping -----------------------------------------------


def test_module_name_from_src_layout():
    assert module_name_for("src/repro/net/rpc.py") == "repro.net.rpc"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("tests/test_net.py") == "test_net"


def test_module_directive_overrides_path():
    source = "# repro: module=repro.sim.custom\nx = 1\n"
    assert module_name_for("anywhere/odd.py", source) == "repro.sim.custom"


def test_scope_gates_checkers():
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    in_scope = analyze_source(source, module="repro.sim.clock")
    assert [d.code for d in in_scope] == ["DET001"]
    # Outside the repro tree the determinism contract does not apply.
    assert analyze_source(source, module="scripts.clock") == []


def test_fixture_directories_skipped_when_walking():
    report = analyze_paths([str(ROOT / "tests")])
    analyzed_fixture = any("fixtures" in d.path for d in report.diagnostics)
    assert not analyzed_fixture and report.ok


def test_syntax_errors_reported_not_raised():
    report = analyze_paths([str(FIXTURES / "syntax_error_fixture.py")])
    (diag,) = report.diagnostics
    assert diag.code == "PARSE"


# -- CLI ------------------------------------------------------------------------


def test_cli_exit_one_on_findings(capsys):
    assert main([str(FIXTURES / "det_wall_clock.py")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(ROOT / "src")]) == 0


def test_cli_exit_two_on_bad_usage(capsys):
    assert main(["no/such/path.py"]) == 2
    assert main(["--checker", "nonsense", str(ROOT / "src")]) == 2


def test_cli_checker_selection(capsys):
    # Only the rng checker runs: the wall-clock fixture comes out clean.
    assert main(["--checker", "rng-discipline",
                 str(FIXTURES / "det_wall_clock.py")]) == 0


def test_cli_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "RNG001", "SIM001", "PROTO001"):
        assert code in out


def test_cli_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "det_wall_clock.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["total"] == len(payload["findings"]) > 0
    finding = payload["findings"][0]
    assert {"path", "line", "col", "code", "severity",
            "message", "checker"} <= set(finding)


def test_cli_module_entry_point():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=str(ROOT), env=env, capture_output=True, text=True,
        check=False)
    assert result.returncode == 0, result.stdout + result.stderr
