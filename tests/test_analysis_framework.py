"""Framework behaviour: suppressions, scoping, CLI exit codes, JSON."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    analyze_paths,
    analyze_source,
    module_name_for,
)
from repro.analysis.__main__ import main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


# -- suppressions -----------------------------------------------------------


def test_line_suppressions_respected():
    path = str(FIXTURES / "suppress_fixture.py")
    report = analyze_paths([path])
    assert [d.code for d in report.diagnostics] == ["DET001"]
    assert report.suppressed == 2


def test_no_suppress_reveals_everything():
    path = str(FIXTURES / "suppress_fixture.py")
    report = analyze_paths([path], respect_suppressions=False)
    assert [d.code for d in report.diagnostics] == ["DET001"] * 3
    assert report.suppressed == 0


def test_file_level_suppression_filters_one_code():
    path = str(FIXTURES / "suppress_file_fixture.py")
    report = analyze_paths([path])
    assert [d.code for d in report.diagnostics] == ["DET002"]
    assert report.suppressed == 1


def test_suppression_scope_decorator_def_alias_and_fn():
    # The fixture's expect markers pin the three findings that must
    # survive; the suppressed count pins the four that must not:
    # RNG004 via a decorator-line allow, DET001 via a def-line allow,
    # and two DET001s under one allow-fn.
    path = str(FIXTURES / "suppress_scope_fixture.py")
    report = analyze_paths([path])
    assert [d.code for d in report.diagnostics] == [
        "RNG004", "DET001", "DET001"]
    assert report.suppressed == 4


def test_suppression_scope_no_suppress_reveals_all():
    path = str(FIXTURES / "suppress_scope_fixture.py")
    report = analyze_paths([path], respect_suppressions=False)
    assert sorted(d.code for d in report.diagnostics) == (
        ["DET001"] * 5 + ["RNG004"] * 2)
    assert report.suppressed == 0


def test_allow_fn_degrades_to_line_scope_without_a_tree():
    from repro.analysis.diagnostics import Diagnostic
    from repro.analysis.suppressions import Suppressions

    # Unparseable source: the marker still covers its own line, but
    # cannot grow to a function span.
    source = "def broken(:\n    x = 1  # repro: allow-fn[DET001]\n"
    scanned = Suppressions.scan(source)
    on_line = Diagnostic(path="f.py", line=2, col=0, code="DET001",
                         message="m")
    off_line = Diagnostic(path="f.py", line=1, col=0, code="DET001",
                          message="m")
    assert scanned.is_suppressed(on_line)
    assert not scanned.is_suppressed(off_line)


# -- module naming and scoping -----------------------------------------------


def test_module_name_from_src_layout():
    assert module_name_for("src/repro/net/rpc.py") == "repro.net.rpc"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("tests/test_net.py") == "test_net"


def test_module_directive_overrides_path():
    source = "# repro: module=repro.sim.custom\nx = 1\n"
    assert module_name_for("anywhere/odd.py", source) == "repro.sim.custom"


def test_scope_gates_checkers():
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    in_scope = analyze_source(source, module="repro.sim.clock")
    assert [d.code for d in in_scope] == ["DET001"]
    # Outside the repro tree the determinism contract does not apply.
    assert analyze_source(source, module="scripts.clock") == []


def test_fixture_directories_skipped_when_walking():
    report = analyze_paths([str(ROOT / "tests")])
    analyzed_fixture = any("fixtures" in d.path for d in report.diagnostics)
    assert not analyzed_fixture and report.ok


def test_syntax_errors_reported_not_raised():
    report = analyze_paths([str(FIXTURES / "syntax_error_fixture.py")])
    (diag,) = report.diagnostics
    assert diag.code == "PARSE"


# -- parallel runner ----------------------------------------------------------


def test_parallel_analysis_identical_to_serial():
    # The fixture corpus has findings from most checkers plus a parse
    # failure, so this pins diagnostics, ordering, suppressed count,
    # and file count across the sharded path.
    paths = [str(FIXTURES)]
    serial = analyze_paths(paths, jobs=1)
    parallel = analyze_paths(paths, jobs=2)
    assert ([d.to_dict() for d in parallel.diagnostics]
            == [d.to_dict() for d in serial.diagnostics])
    assert parallel.files_analyzed == serial.files_analyzed
    assert parallel.suppressed == serial.suppressed
    assert serial.diagnostics  # the comparison is not vacuous


def test_parallel_full_sweep_clean_within_time_bound():
    import time as _time

    start = _time.monotonic()
    report = analyze_paths([str(ROOT / "src")], jobs=2)
    elapsed = _time.monotonic() - start
    assert report.ok
    # Generous smoke bound: the sharded sweep of src/ must stay well
    # under interactive-CI scale even on a loaded single-core runner.
    assert elapsed < 120.0


# -- CLI ------------------------------------------------------------------------


def test_cli_exit_one_on_findings(capsys):
    assert main([str(FIXTURES / "det_wall_clock.py")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(ROOT / "src")]) == 0


def test_cli_exit_two_on_bad_usage(capsys):
    assert main(["no/such/path.py"]) == 2
    assert main(["--checker", "nonsense", str(ROOT / "src")]) == 2


def test_cli_checker_selection(capsys):
    # Only the rng checker runs: the wall-clock fixture comes out clean.
    assert main(["--checker", "rng-discipline",
                 str(FIXTURES / "det_wall_clock.py")]) == 0


def test_cli_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "RNG001", "SIM001", "PROTO001"):
        assert code in out


def test_cli_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "det_wall_clock.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["total"] == len(payload["findings"]) > 0
    finding = payload["findings"][0]
    assert {"path", "line", "col", "code", "severity",
            "message", "checker"} <= set(finding)


def test_cli_sarif_format(capsys):
    assert main(["--format", "sarif",
                 str(FIXTURES / "det_wall_clock.py")]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analysis"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    for code in ("DET001", "RNG004", "RACE001", "RACE002", "FLOW001",
                 "PARSE"):
        assert code in rule_ids
    assert run["results"], "wall-clock fixture must produce results"
    result = run["results"][0]
    assert result["ruleId"].startswith("DET")
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]


def test_cli_jobs_flag(capsys):
    assert main(["--jobs", "2", str(FIXTURES / "det_wall_clock.py"),
                 str(FIXTURES / "suppress_fixture.py")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_module_entry_point():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=str(ROOT), env=env, capture_output=True, text=True,
        check=False)
    assert result.returncode == 0, result.stdout + result.stderr
