"""Tests for mastership transfer (Paxos phase 1 with ballot fencing)."""

import math

import pytest

from repro.core import PlanetSession, TxState
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.paxos import Ballot
from repro.paxos.acceptor import AcceptorState, handle_phase1a, \
    handle_phase2a
from repro.paxos.messages import Phase2a
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_cluster(one_way=20.0, mastership=0, seed=71):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=one_way, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      mastership=mastership)
    cluster.load({"item:1": 100})
    return env, cluster


# ---------------------------------------------------------------- phase 1


def test_phase1a_promise_and_rejection():
    state = AcceptorState()
    ok, previous = handle_phase1a(state, Ballot(3, "b"))
    assert ok and previous is None
    ok, previous = handle_phase1a(state, Ballot(1, "a"))
    assert not ok and previous == Ballot(3, "b")
    ok, _ = handle_phase1a(state, Ballot(4, "c"))
    assert ok


def test_phase1_fences_lower_phase2a():
    state = AcceptorState()
    handle_phase1a(state, Ballot(5, "new-leader"))
    vote = handle_phase2a(state, Phase2a("k", 1, Ballot(0, "old"), "v"))
    assert not vote.accepted
    assert vote.promised == Ballot(5, "new-leader")


def test_acceptor_truncation():
    state = AcceptorState(keep_instances=4)
    for seq in range(1, 20):
        handle_phase2a(state, Phase2a("k", seq, Ballot(0, "l"), seq))
    assert len(state.accepted) <= 5
    assert state.highest_accepted_seq() == 19


# ---------------------------------------------------------------- takeover


def test_transfer_moves_leadership():
    env, cluster = make_cluster(mastership=0)
    assert cluster.leader_dc("item:1") == 0
    outcome = []

    def driver(env):
        won = yield cluster.transfer_mastership("item:1", 2)
        outcome.append(won)

    env.process(driver(env))
    env.run()
    assert outcome == [True]
    assert cluster.leader_dc("item:1") == 2
    assert cluster.node_for(2, "item:1").leads("item:1")
    assert not cluster.node_for(0, "item:1").leads("item:1")


def test_commits_work_after_transfer():
    env, cluster = make_cluster(mastership=0)
    session = PlanetSession(cluster, "web", 2)
    results = []

    def driver(env):
        won = yield cluster.transfer_mastership("item:1", 2)
        assert won
        tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                                  timeout_ms=math.inf)
              .on_failure(lambda i: None)
              .on_complete(lambda i: results.append(i.state)))
        planet_tx = tx.execute()
        yield planet_tx.final_event

    env.process(driver(env))
    env.run()
    assert results == [TxState.COMMITTED]
    assert cluster.read_value("item:1", dc=2) == 99


def test_fenced_old_leader_rounds_lose():
    # The old leader starts a round; the takeover happens while its
    # phase2a messages are in flight. Its round must lose (rejected by
    # promised acceptors) and the transaction abort cleanly.
    env, cluster = make_cluster(mastership=0, one_way=60.0)
    tm = cluster.create_client("app", 0)
    handles = []

    def driver(env):
        handles.append(tm.begin([WriteOp("item:1", Update.delta(-1))]))
        yield env.timeout(5)  # propose reached the old (local) leader
        yield cluster.transfer_mastership("item:1", 1)

    env.process(driver(env))
    env.run(until=30_000)
    handle = handles[0]
    assert handle.result is not None
    # The race between the old round's quorum and the fencing can go
    # either way on timing, but a *decided* result is mandatory and the
    # record must be consistent afterwards.
    expected = 99 if handle.result.committed else 100
    assert cluster.read_value("item:1", dc=1) == expected
    assert cluster.total_pending_options() == 0


def test_transfer_to_same_dc_is_idempotent():
    env, cluster = make_cluster(mastership=0)
    outcome = []

    def driver(env):
        won = yield cluster.transfer_mastership("item:1", 0)
        outcome.append(won)

    env.process(driver(env))
    env.run()
    assert outcome == [True]
    assert cluster.leader_dc("item:1") == 0


def test_contested_takeovers_one_winner_routes():
    # Two DCs grab leadership in turn; the later (higher-ballot)
    # takeover wins the fencing, and routing follows the last success.
    env, cluster = make_cluster(mastership=0)
    outcome = []

    def driver(env):
        won_a = yield cluster.transfer_mastership("item:1", 1)
        won_b = yield cluster.transfer_mastership("item:1", 2)
        outcome.append((won_a, won_b))

    env.process(driver(env))
    env.run()
    assert outcome == [(True, True)]
    assert cluster.leader_dc("item:1") == 2
    # The DC-2 node's ballot outranks DC-1's.
    ballot_1 = cluster.node_for(1, "item:1")._ballots["item:1"]
    ballot_2 = cluster.node_for(2, "item:1")._ballots["item:1"]
    assert ballot_2 > ballot_1


def test_transfer_validation():
    env, cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.transfer_mastership("item:1", 9)
    with pytest.raises(ValueError):
        cluster.mastership.set_override("item:1", 9)
