"""The scenario fault kinds: outage, brownout, flappy link.

Hand-built schedules against a tiny cluster prove each windowed fault
actually opens and closes: outage takes the whole DC down and brings
it back staggered (with mastership failover and state transfer),
brownout inflates every listed link pairwise and heals, flappy_link
cuts and restores periodically.  Plus the anchor-perturbing sampler's
determinism, which the nightly scenario fuzz legs rely on.
"""

from random import Random

from repro.check.faults import (
    ALL_KINDS,
    KINDS,
    SCENARIO_KINDS,
    FaultAction,
    FaultSchedule,
)
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams


def make_cluster(seed=7, partitions=2):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      partitions_per_dc=partitions)
    cluster.load({f"item:{i}": 100 for i in range(8)})
    return env, cluster


def probe(env, cluster, at_ms, fn):
    """Record ``fn()`` at virtual time ``at_ms``."""
    out = {}

    def proc():
        yield env.timeout(at_ms)
        out["value"] = fn()

    env.process(proc())
    return out


# ---------------------------------------------------------------- outage


def test_outage_window_opens_and_closes():
    env, cluster = make_cluster()
    addresses = [Cluster.node_address(1, p) for p in range(2)]
    schedule = FaultSchedule([FaultAction(1_000.0, "outage", 3_000.0,
                                          {"dc": 1})])
    schedule.apply(cluster)
    before = probe(env, cluster, 500.0,
                   lambda: [cluster.transport.is_down(a) for a in addresses])
    during = probe(env, cluster, 2_000.0,
                   lambda: [cluster.transport.is_down(a) for a in addresses])
    after = probe(env, cluster, 4_000.0,
                  lambda: [cluster.transport.is_down(a) for a in addresses])
    env.run(until=5_000)
    assert before["value"] == [False, False]
    assert during["value"] == [True, True]   # the whole DC, not one node
    assert after["value"] == [False, False]


def test_outage_staggers_recovery():
    env, cluster = make_cluster()
    addresses = [Cluster.node_address(1, p) for p in range(2)]
    schedule = FaultSchedule([FaultAction(1_000.0, "outage", 3_000.0,
                                          {"dc": 1, "stagger_ms": 200.0})])
    schedule.apply(cluster)
    # At until_ms only partition 0 is back; partition 1 follows one
    # stagger later.
    mid = probe(env, cluster, 3_100.0,
                lambda: [cluster.transport.is_down(a) for a in addresses])
    done = probe(env, cluster, 3_300.0,
                 lambda: [cluster.transport.is_down(a) for a in addresses])
    env.run(until=5_000)
    assert mid["value"] == [False, True]
    assert done["value"] == [False, False]


def test_outage_fails_over_only_keys_the_dark_dc_leads():
    env, cluster = make_cluster()
    keys = [f"item:{i}" for i in range(8)]
    led_by_1 = [k for k in keys if cluster.mastership.leader_dc(k) == 1]
    others = {k: cluster.mastership.leader_dc(k)
              for k in keys if cluster.mastership.leader_dc(k) != 1}
    assert led_by_1, "fixture must include DC1-led keys"
    schedule = FaultSchedule([FaultAction(1_000.0, "outage", 3_000.0, {
        "dc": 1, "failover_keys": tuple(keys), "failover_dc": 2,
        "failover_after_ms": 100.0})])
    schedule.apply(cluster)
    env.run(until=6_000)
    for key in led_by_1:
        assert cluster.mastership.leader_dc(key) == 2, key
    for key, dc in others.items():
        assert cluster.mastership.leader_dc(key) == dc, key


def test_outage_failover_is_prompt_despite_dark_replica():
    # The takeover's phase 1 cannot hear from the dead DC; quorum-fast
    # completion must settle on the two live promises instead of
    # sitting on the RPC timeout with the key fenced but still routed
    # to the dead leader.
    env, cluster = make_cluster()
    keys = [f"item:{i}" for i in range(8)]
    led_by_1 = [k for k in keys if cluster.mastership.leader_dc(k) == 1]
    schedule = FaultSchedule([FaultAction(1_000.0, "outage", 9_000.0, {
        "dc": 1, "failover_keys": tuple(keys), "failover_dc": 2,
        "failover_after_ms": 0.0})])
    schedule.apply(cluster)
    moved = probe(env, cluster, 2_000.0,
                  lambda: [cluster.mastership.leader_dc(k)
                           for k in led_by_1])
    env.run(until=2_500)
    # Well before any 5s RPC timeout, every DC1-led key routes to DC2.
    assert moved["value"] == [2] * len(led_by_1)


def test_catch_up_from_repairs_stale_replicas():
    env, cluster = make_cluster()
    stale = cluster.nodes[1][0]
    fresh = cluster.nodes[2][0]
    shared = [key for key in fresh.records if key in stale.records]
    assert shared
    key = shared[0]
    fresh.records[key].apply_value(55, env.now)
    fresh.records[key].apply_value(44, env.now)
    repaired = stale.catch_up_from(fresh)
    assert repaired == 1
    assert stale.records[key].value == 44
    assert stale.records[key].version == fresh.records[key].version
    # Idempotent: nothing newer, nothing to copy.
    assert stale.catch_up_from(fresh) == 0


# ---------------------------------------------------------------- brownout


def _extra_delay(cluster, src, dst):
    return cluster.transport._extra_delay.get((src, dst), 0.0)


def test_brownout_inflates_every_listed_pair_then_heals():
    env, cluster = make_cluster()
    pairs = [(a, b) for a in (0, 1, 2) for b in (0, 1, 2) if a != b]
    schedule = FaultSchedule([FaultAction(1_000.0, "brownout", 3_000.0, {
        "dcs": (0, 1, 2), "extra_ms": 150.0})])
    schedule.apply(cluster)
    during = probe(env, cluster, 2_000.0,
                   lambda: {p: _extra_delay(cluster, *p) for p in pairs})
    after = probe(env, cluster, 4_000.0,
                  lambda: {p: _extra_delay(cluster, *p) for p in pairs})
    env.run(until=5_000)
    assert all(v == 150.0 for v in during["value"].values())
    assert all(v == 0.0 for v in after["value"].values())


def test_brownout_leaves_unlisted_links_alone():
    env, cluster = make_cluster()
    schedule = FaultSchedule([FaultAction(1_000.0, "brownout", 3_000.0, {
        "dcs": (0, 1), "extra_ms": 150.0})])
    schedule.apply(cluster)
    during = probe(env, cluster, 2_000.0,
                   lambda: (_extra_delay(cluster, 0, 1),
                            _extra_delay(cluster, 0, 2),
                            _extra_delay(cluster, 1, 2)))
    env.run(until=5_000)
    assert during["value"] == (150.0, 0.0, 0.0)


# ---------------------------------------------------------------- flappy


def test_flappy_link_cuts_and_restores_periodically():
    env, cluster = make_cluster()
    schedule = FaultSchedule([FaultAction(1_000.0, "flappy_link", 2_000.0, {
        "src_dc": 0, "dst_dc": 1, "period_ms": 400.0, "duty": 0.5})])
    schedule.apply(cluster)
    # duty 0.5 over a 400ms period: down [1000,1200), up [1200,1400) …
    cut = lambda: (0, 1) in cluster.transport._partitioned  # noqa: E731
    samples = {t: probe(env, cluster, t, cut)
               for t in (900.0, 1_100.0, 1_300.0, 1_500.0, 2_500.0)}
    env.run(until=5_000)
    assert samples[900.0]["value"] is False
    assert samples[1_100.0]["value"] is True
    assert samples[1_300.0]["value"] is False
    assert samples[1_500.0]["value"] is True
    assert samples[2_500.0]["value"] is False  # healed after the window


# ---------------------------------------------------------------- sampler


def test_palettes_nest():
    assert set(KINDS) < set(SCENARIO_KINDS) <= set(ALL_KINDS)
    assert "outage" in SCENARIO_KINDS and "outage" not in KINDS
    assert "collide" not in SCENARIO_KINDS


def test_sample_without_anchor_matches_random():
    keys = [f"item:{i}" for i in range(6)]
    addresses = [Cluster.node_address(dc, 0) for dc in range(3)]
    sampled = FaultSchedule.sample(
        Random(11), 4_000.0, anchor=None, n_datacenters=3,
        addresses=addresses, keys=keys, kinds=KINDS, n_faults=4)
    direct = FaultSchedule.random(
        Random(11), 4, 4_000.0, 3, addresses, keys, kinds=KINDS)
    assert [a.describe() for a in sampled.actions] \
        == [a.describe() for a in direct.actions]


def test_sample_is_deterministic_and_jitters_around_anchor():
    anchor = FaultSchedule([
        FaultAction(1_000.0, "outage", 2_000.0,
                    {"dc": 1, "failover_keys": ("item:0",),
                     "failover_dc": 2, "failover_after_ms": 100.0,
                     "stagger_ms": 20.0}),
        FaultAction(1_500.0, "brownout", 2_500.0,
                    {"dcs": (0, 1), "extra_ms": 200.0}),
    ])
    keys = [f"item:{i}" for i in range(6)]
    addresses = [Cluster.node_address(dc, 0) for dc in range(3)]

    def draw(seed):
        return FaultSchedule.sample(
            Random(seed), 4_000.0, anchor=anchor, n_datacenters=3,
            addresses=addresses, keys=keys, kinds=SCENARIO_KINDS,
            n_faults=1)

    one, two = draw(5), draw(5)
    assert [a.describe() for a in one.actions] \
        == [a.describe() for a in two.actions]
    # The anchor's structure survives: same kinds, same structural args.
    kinds = [a.kind for a in one.actions]
    assert kinds.count("outage") >= 1 and kinds.count("brownout") >= 1
    outage = next(a for a in one.actions if a.kind == "outage")
    assert outage.args["dc"] == 1
    assert outage.args["failover_keys"] == ("item:0",)
    # …but the timings moved (jitter is relative, seed 5 is not 1.0).
    assert outage.at_ms != 1_000.0
    # Windows stay inside the horizon's safe band.
    for action in one.actions:
        if action.until_ms is not None:
            assert action.until_ms <= 0.90 * 4_000.0
    # A different seed perturbs differently.
    assert [a.describe() for a in draw(6).actions] \
        != [a.describe() for a in one.actions]
