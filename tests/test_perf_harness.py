"""The compare/report plumbing of repro.perf, plus a tiny end-to-end
smoke of the CLI — small scales so the whole file runs in seconds.
"""

import json

import pytest

from repro.perf import SCHEMA_VERSION, compare_reports, load_report
from repro.perf.benches import bench_kernel, bench_transport
from repro.perf.harness import build_report, write_report


def _report(**metrics_by_bench):
    """Hand-built report: name -> (metric, higher_is_better, value)."""
    benchmarks = {}
    for name, (metric, higher, value) in metrics_by_bench.items():
        benchmarks[name] = {
            "metrics": {metric: value},
            "score_metric": metric,
            "higher_is_better": higher,
            "unit": "x",
        }
    return {"schema": SCHEMA_VERSION, "benchmarks": benchmarks}


def test_compare_passes_within_threshold():
    baseline = _report(kernel=("events_per_sec", True, 1_000.0))
    current = _report(kernel=("events_per_sec", True, 900.0))  # -10%
    assert compare_reports(current, baseline, threshold_pct=25.0) == []


def test_compare_flags_throughput_drop():
    baseline = _report(kernel=("events_per_sec", True, 1_000.0))
    current = _report(kernel=("events_per_sec", True, 700.0))  # -30%
    (regression,) = compare_reports(current, baseline, threshold_pct=25.0)
    assert regression.bench == "kernel"
    assert regression.change_pct == pytest.approx(-30.0)
    assert "regressed" in regression.format()


def test_compare_flags_wall_time_rise():
    # Lower is better: 2s -> 3s is a 33% loss, reported as negative.
    baseline = _report(figure=("seconds", False, 2.0))
    current = _report(figure=("seconds", False, 3.0))
    (regression,) = compare_reports(current, baseline, threshold_pct=25.0)
    assert regression.change_pct < -25.0


def test_compare_ignores_improvements_and_new_benches():
    baseline = _report(kernel=("events_per_sec", True, 1_000.0))
    current = _report(kernel=("events_per_sec", True, 5_000.0),
                      transport=("messages_per_sec", True, 1.0))
    assert compare_reports(current, baseline, threshold_pct=25.0) == []


def test_report_roundtrip(tmp_path):
    results = {"kernel": {"events_per_sec": 1234.5, "events": 100.0}}
    scores = {"kernel": ("events_per_sec", True, "events/s")}
    report = build_report(results, scores, scale=0.5, pool=2,
                          reference={"rev": "abc"})
    path = tmp_path / "bench.json"
    write_report(str(path), report)
    loaded = load_report(str(path))
    assert loaded == report
    assert loaded["schema"] == SCHEMA_VERSION
    assert loaded["benchmarks"]["kernel"]["score_metric"] == "events_per_sec"
    assert loaded["reference"] == {"rev": "abc"}
    # The file ends in a newline so it diffs cleanly when committed.
    assert path.read_text(encoding="utf-8").endswith("}\n")


def test_micro_benches_do_real_work():
    kernel = bench_kernel(scale=0.01, pool=1, repeats=1)
    assert kernel["events"] >= 1_000
    assert kernel["events_per_sec"] > 0
    transport = bench_transport(scale=0.01, pool=1, repeats=1)
    assert transport["messages"] >= 1_000
    assert transport["messages_per_sec"] > 0


def test_cli_smoke_writes_report_and_compares(tmp_path):
    from repro.perf.__main__ import main

    out = tmp_path / "bench.json"
    assert main(["--scale", "0.01", "--repeats", "1", "--pool", "2",
                 "--only", "kernel", "--out", str(out)]) == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert set(report["benchmarks"]) == {"kernel"}

    # Comparing against itself.  At this tiny scale the timing is all
    # noise, so the threshold is deliberately loose — this asserts the
    # gate *mechanism*, the realistic-threshold cases above assert the
    # arithmetic.
    second = tmp_path / "bench2.json"
    assert main(["--scale", "0.01", "--repeats", "1", "--pool", "2",
                 "--only", "kernel", "--out", str(second),
                 "--threshold", "90", "--compare", str(out)]) == 0

    # A doctored baseline 100x faster (a -99% drop) must trip it.
    fast = json.loads(out.read_text(encoding="utf-8"))
    entry = fast["benchmarks"]["kernel"]
    entry["metrics"][entry["score_metric"]] *= 100
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(fast), encoding="utf-8")
    assert main(["--scale", "0.01", "--repeats", "1", "--pool", "2",
                 "--only", "kernel", "--out", str(second),
                 "--threshold", "90", "--compare", str(doctored)]) == 1
