"""Flow-engine internals: symbols, call graph, CFG, dataflow solver.

These tests assert on graph *structure* over the engine fixture —
edge kinds the simulator needs (process spawns, RPC registration
stitched to send sites), yield-boundary placement in CFGs under
``try/finally`` and loops, and worklist convergence on recursive and
cyclic inputs.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.base import SourceFile
from repro.analysis.names import ImportMap
from repro.analysis.flow import (
    FlowEngine,
    ReachingDefinitions,
    build_cfg,
    solve_forward,
)

FIXTURE = (Path(__file__).resolve().parent / "fixtures" / "analysis"
           / "flow_engine_fixture.py")
MODULE = "repro.mdcc.fixture_engine"


@pytest.fixture(scope="module")
def engine():
    source = FIXTURE.read_text(encoding="utf-8")
    tree = ast.parse(source)
    file = SourceFile(path=str(FIXTURE), module=MODULE, source=source,
                      tree=tree, imports=ImportMap(tree, MODULE))
    return FlowEngine([file])


# -- symbol table -----------------------------------------------------------


def test_symbol_table_indexes_methods_and_functions(engine):
    table = engine.symbols
    assert f"{MODULE}.Service._serve" in table.by_qualname
    assert f"{MODULE}.countdown" in table.by_qualname
    serve = table.by_qualname[f"{MODULE}.Service._serve"]
    assert serve.is_method and serve.is_generator
    assert table.by_qualname[f"{MODULE}.record"].class_name is None


def test_attribute_write_index_excludes_init(engine):
    (service,) = engine.symbols.classes["Service"]
    writers = service.writes_outside("jobs", "_serve")
    assert {w.method for w in writers} == {"_on_submit", "_on_drain"}
    assert {w.kind for w in writers} == {"mutate"}
    # __init__'s `self.jobs = []` runs before any process is scheduled.
    assert all(w.method != "__init__" for w in writers)


def test_handler_kinds_collected(engine):
    (service,) = engine.symbols.classes["Service"]
    assert service.handler_kinds == {"submit", "drain"}


# -- call graph -------------------------------------------------------------


def test_env_process_edge(engine):
    graph = engine.callgraph
    assert graph.is_process_root(f"{MODULE}.Service._serve")
    edges = [e for e in graph.callers(f"{MODULE}.Service._serve")
             if e.kind == "process"]
    assert edges and edges[0].caller == f"{MODULE}.Service.__init__"


def test_rpc_registration_stitched_to_send_sites(engine):
    graph = engine.callgraph
    assert graph.handlers["submit"] == {f"{MODULE}.Service._on_submit"}
    assert graph.handlers["drain"] == {f"{MODULE}.Service._on_drain"}
    rpc = {(e.caller, e.callee) for e in graph.edges if e.kind == "rpc"}
    # _flush sends both kinds; each send fans out to its handler.
    assert (f"{MODULE}.Service._flush",
            f"{MODULE}.Service._on_submit") in rpc
    assert (f"{MODULE}.Service._flush",
            f"{MODULE}.Service._on_drain") in rpc


def test_transitive_reachability_through_process(engine):
    graph = engine.callgraph
    reachable = graph.reachable_from(f"{MODULE}.Service._serve")
    # _serve -> _flush -> (rpc) -> handlers
    assert f"{MODULE}.Service._flush" in reachable
    assert f"{MODULE}.Service._on_submit" in reachable


# -- CFG --------------------------------------------------------------------


def _cfg_for(engine, qualname):
    return engine.cfg(engine.symbols.by_qualname[qualname])


def test_cfg_marks_yields_in_try_and_loops(engine):
    cfg = _cfg_for(engine, f"{MODULE}.loop_with_finally")
    yield_lines = sorted(node.line for node in cfg.yield_nodes())
    source_lines = FIXTURE.read_text().splitlines()
    for line in yield_lines:
        assert "yield" in source_lines[line - 1]
    assert len(yield_lines) == 2
    # The for/while headers are NOT yield points: only the yield
    # statements inside their bodies suspend the frame.
    headers = [n for n in cfg.nodes
               if isinstance(n.stmt, (ast.For, ast.While))]
    assert headers and all(not n.is_yield for n in headers)


def test_cfg_try_finally_edges(engine):
    cfg = _cfg_for(engine, f"{MODULE}.loop_with_finally")
    (try_yield,) = [n for n in cfg.yield_nodes()
                    if any(isinstance(p.stmt, ast.For)
                           for p in (cfg.nodes[i] for i in n.preds))]
    succ_stmts = [cfg.nodes[i].stmt for i in try_yield.succs]
    # The yield inside try must reach both the except handler (raise
    # path) and, conservatively, the finally body.
    lines = {getattr(s, "lineno", None) for s in succ_stmts}
    assert len(try_yield.succs) >= 2
    source_lines = FIXTURE.read_text().splitlines()
    reached = {source_lines[line - 1].strip()
               for line in lines if line is not None}
    assert any("item = 0" in text or "record" in text for text in reached)


def test_cfg_loop_back_edges(engine):
    cfg = _cfg_for(engine, f"{MODULE}.loop_with_finally")
    loop_headers = [n for n in cfg.nodes
                    if isinstance(n.stmt, (ast.For, ast.While))]
    for header in loop_headers:
        # Some body node flows back to the header.
        assert any(header.index in cfg.nodes[p].succs
                   for p in header.preds
                   if cfg.nodes[p].line > header.line), (
            f"no back-edge into {header.label}")


def test_cfg_rpo_starts_at_entry(engine):
    cfg = _cfg_for(engine, f"{MODULE}.Service._serve")
    order = cfg.rpo()
    assert order[0] == cfg.ENTRY
    assert set(order) >= {n.index for n in cfg.nodes if n.preds or n.succs}


# -- dataflow ----------------------------------------------------------------


def test_reaching_definitions_on_straight_line():
    source = ("def f(a):\n"
              "    b = a\n"
              "    b = 2\n"
              "    return b\n")
    fn = ast.parse(source).body[0]
    cfg = build_cfg(fn)
    result = solve_forward(cfg, ReachingDefinitions())
    exit_in = result.in_states[cfg.EXIT]
    # The second binding of b kills the first.
    assert ("b", 3) in exit_in and ("b", 2) not in exit_in
    assert ("a", 1) in exit_in


def test_dataflow_converges_on_loops(engine):
    cfg = _cfg_for(engine, f"{MODULE}.loop_with_finally")
    result = solve_forward(cfg, ReachingDefinitions())
    # Fixpoint must terminate well below the safety valve, and the
    # loop-carried rebinding of `items` must merge both definitions
    # at the while header.
    assert result.iterations < 200
    while_header = next(n for n in cfg.nodes
                        if isinstance(n.stmt, ast.While))
    items_defs = {d for d in result.at(while_header) if d[0] == "items"}
    assert len(items_defs) >= 2


def test_dataflow_converges_on_recursive_functions(engine):
    # Recursion cycles live in the call graph, not any single CFG; the
    # per-function solve must still converge for every function in the
    # recursive clique.
    for name in ("countdown", "mutual_a", "mutual_b"):
        cfg = _cfg_for(engine, f"{MODULE}.{name}")
        result = solve_forward(cfg, ReachingDefinitions())
        assert result.iterations <= 3 * len(cfg.nodes) + 3
    graph = engine.callgraph
    assert f"{MODULE}.countdown" in graph.reachable_from(
        f"{MODULE}.countdown")
    assert f"{MODULE}.mutual_a" in graph.reachable_from(
        f"{MODULE}.mutual_b")
