"""Tests for the exponential-backoff retry helper."""

import random

import pytest

from repro.core import AdmissionPolicy, PlanetSession, TxState
from repro.core.retry import BackoffPolicy, RetryingTransaction, \
    execute_with_retries
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


class RejectFirstN(AdmissionPolicy):
    """Rejects the first ``n`` decisions, then admits everything."""

    def __init__(self, n):
        self.remaining = n

    def decide(self, likelihood, rng):
        if self.remaining > 0:
            self.remaining -= 1
            return False
        return True

    def describe(self):
        return f"reject-first-{self.remaining}"


def make_session(admission=None, seed=91):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed))
    cluster.load({"item:1": 100})
    session = PlanetSession(cluster, "web", 0, admission=admission)
    return env, cluster, session


# ---------------------------------------------------------------- backoff


def test_backoff_grows_exponentially():
    policy = BackoffPolicy(initial_ms=100, multiplier=2.0,
                           max_backoff_ms=10_000, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay_ms(a, rng) for a in (1, 2, 3, 4)]
    assert delays == [100.0, 200.0, 400.0, 800.0]


def test_backoff_caps_at_max():
    policy = BackoffPolicy(initial_ms=100, multiplier=10.0,
                           max_backoff_ms=500, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay_ms(5, rng) == 500.0


def test_backoff_jitter_bounds():
    policy = BackoffPolicy(initial_ms=100, jitter=0.2)
    rng = random.Random(1)
    for _ in range(100):
        delay = policy.delay_ms(1, rng)
        assert 80.0 <= delay <= 120.0


def test_backoff_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(initial_ms=0)
    with pytest.raises(ValueError):
        BackoffPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(max_backoff_ms=10, initial_ms=100)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.0)
    policy = BackoffPolicy()
    with pytest.raises(ValueError):
        policy.delay_ms(0, random.Random(0))


# ---------------------------------------------------------------- retries


def test_first_attempt_commit_needs_no_retry():
    env, cluster, session = make_session()
    retry = execute_with_retries(session, [WriteOp("item:1",
                                                   Update.delta(-1))],
                                 timeout_ms=5_000)
    env.run()
    assert retry.committed
    assert len(retry.attempts) == 1


def test_rejections_are_retried_until_admitted():
    env, cluster, session = make_session(admission=RejectFirstN(2))
    retry = execute_with_retries(
        session, [WriteOp("item:1", Update.delta(-1))], timeout_ms=5_000,
        backoff=BackoffPolicy(initial_ms=50, jitter=0.0))
    env.run()
    assert retry.committed
    assert len(retry.attempts) == 3
    assert [t.state for t in retry.attempts] == [
        TxState.REJECTED, TxState.REJECTED, TxState.COMMITTED]


def test_attempt_budget_is_respected():
    env, cluster, session = make_session(admission=RejectFirstN(99))
    retry = execute_with_retries(
        session, [WriteOp("item:1", Update.delta(-1))], timeout_ms=5_000,
        max_attempts=3, backoff=BackoffPolicy(initial_ms=10, jitter=0.0))
    env.run()
    assert not retry.committed
    assert retry.final_info.state is TxState.REJECTED
    assert len(retry.attempts) == 3


def test_backoff_delays_attempts():
    env, cluster, session = make_session(admission=RejectFirstN(2))
    retry = execute_with_retries(
        session, [WriteOp("item:1", Update.delta(-1))], timeout_ms=5_000,
        backoff=BackoffPolicy(initial_ms=100, multiplier=2.0, jitter=0.0))
    env.run()
    starts = [t.start_ms for t in retry.attempts]
    assert starts[1] - starts[0] >= 100.0
    assert starts[2] - starts[1] >= 200.0


def test_aborts_not_retried_by_default():
    # Two clients race; the loser aborts and (by default) stays lost.
    env, cluster, session = make_session()
    rival = PlanetSession(cluster, "rival", 1)
    results = []

    def driver(env):
        (rival.transaction([WriteOp("item:1", Update.delta(-1))],
                           timeout_ms=5_000)
         .on_failure(lambda i: None)).execute()
        retry = execute_with_retries(
            session, [WriteOp("item:1", Update.delta(-1))],
            timeout_ms=5_000)
        info = yield retry.done_event
        results.append((info.state, len(retry.attempts)))

    env.process(driver(env))
    env.run()
    state, attempts = results[0]
    if state is TxState.ABORTED:  # lost the race: no retry
        assert attempts == 1


def test_retry_aborts_opt_in():
    env, cluster, session = make_session()
    rival = PlanetSession(cluster, "rival", 0)
    results = []

    def driver(env):
        (rival.transaction([WriteOp("item:1", Update.delta(-1))],
                           timeout_ms=5_000)
         .on_failure(lambda i: None)).execute()
        retry = RetryingTransaction(
            session, [WriteOp("item:1", Update.delta(-1))],
            timeout_ms=5_000, retry_aborts=True,
            backoff=BackoffPolicy(initial_ms=300, jitter=0.0))
        info = yield retry.done_event
        results.append((info.state, len(retry.attempts)))

    env.process(driver(env))
    env.run()
    state, attempts = results[0]
    assert state is TxState.COMMITTED
    assert attempts >= 1  # retried if the first attempt lost the race
    assert cluster.read_value("item:1") == 98  # both deltas applied


def test_configure_hook_runs_each_attempt():
    env, cluster, session = make_session(admission=RejectFirstN(1))
    seen = []
    retry = execute_with_retries(
        session, [WriteOp("item:1", Update.delta(-1))], timeout_ms=5_000,
        configure=lambda tx: seen.append(tx),
        backoff=BackoffPolicy(initial_ms=10, jitter=0.0))
    env.run()
    assert len(seen) == len(retry.attempts) == 2


def test_retry_validation():
    env, cluster, session = make_session()
    with pytest.raises(ValueError):
        RetryingTransaction(session, [WriteOp("item:1", Update.delta(-1))],
                            timeout_ms=5_000, max_attempts=0)
