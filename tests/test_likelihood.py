"""Tests for the commit-likelihood model (equations 1-9)."""

import math

import pytest

from repro.core.histograms import Pmf
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.core.statistics import OracleLatencySource
from repro.net import uniform_topology, ec2_five_dc
from repro.sim import RandomStreams


def constant_matrix(n=3, rtt_ms=40.0, bin_ms=1.0, n_bins=512):
    """Deterministic RTTs: every remote pair takes exactly rtt_ms."""
    pmfs = {
        (a, b): Pmf.point(rtt_ms, bin_ms, n_bins)
        for a in range(n) for b in range(n) if a != b
    }
    return LatencyMatrix(n, pmfs, bin_ms, n_bins)


def make_model(n=3, rtt_ms=40.0, **kwargs):
    model = CommitLikelihoodModel(
        constant_matrix(n=n, rtt_ms=rtt_ms),
        leader_distribution=[1.0 / n] * n, **kwargs)
    model.precompute()
    return model


# ---------------------------------------------------------------- matrix


def test_latency_matrix_symmetric_fallback():
    pmfs = {(0, 1): Pmf.point(40.0, 1.0, 64)}
    matrix = LatencyMatrix(2, pmfs, 1.0, 64)
    assert matrix.rtt(1, 0).mean() == matrix.rtt(0, 1).mean()


def test_latency_matrix_missing_pair_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix(3, {(0, 1): Pmf.point(40.0, 1.0, 64)}, 1.0, 64)


def test_latency_matrix_one_way_is_half_rtt():
    matrix = constant_matrix(rtt_ms=40.0)
    assert matrix.one_way(0, 1).mean() == pytest.approx(20.5, abs=1.0)


def test_latency_matrix_local_is_fast():
    matrix = constant_matrix()
    assert matrix.rtt(1, 1).mean() < 2.0


# ---------------------------------------------------------------- model setup


def test_model_requires_precompute():
    model = CommitLikelihoodModel(constant_matrix(), [1 / 3] * 3)
    assert not model.ready
    with pytest.raises(RuntimeError):
        model.record_likelihood(0, 1, 0.001)


def test_model_validation():
    matrix = constant_matrix(n=3)
    with pytest.raises(ValueError):
        CommitLikelihoodModel(matrix, [0.5, 0.5])  # wrong length
    with pytest.raises(ValueError):
        CommitLikelihoodModel(matrix, [0.0, 0.0, 0.0])
    with pytest.raises(ValueError):
        CommitLikelihoodModel(matrix, [1 / 3] * 3, quorum=4)
    with pytest.raises(ValueError):
        CommitLikelihoodModel(matrix, [1 / 3] * 3,
                              client_distribution=[1.0, 0.0])
    with pytest.raises(ValueError):
        CommitLikelihoodModel(matrix, [1 / 3] * 3,
                              size_distribution={0: 1.0})


def test_size_distribution_folds_above_max():
    model = CommitLikelihoodModel(
        constant_matrix(), [1 / 3] * 3,
        size_distribution={1: 0.5, 99: 0.5}, max_size=4)
    assert model.size_dist == {1: 0.5, 4: 0.5}


# ---------------------------------------------------------------- behaviour


def test_zero_rate_gives_certain_commit():
    model = make_model()
    assert model.record_likelihood(0, 1, 0.0) == 1.0
    assert model.transaction_likelihood(0, [(1, 0.0), (2, 0.0)]) == 1.0


def test_likelihood_decreases_with_rate():
    model = make_model()
    rates = [0.0, 0.0001, 0.001, 0.01, 0.1]
    likelihoods = [model.record_likelihood(0, 1, r) for r in rates]
    assert likelihoods == sorted(likelihoods, reverse=True)
    assert likelihoods[-1] < 0.1


def test_likelihood_decreases_with_processing_time():
    model = make_model()
    fast = model.record_likelihood(0, 1, 0.002, w_ms=0.0)
    slow = model.record_likelihood(0, 1, 0.002, w_ms=500.0)
    assert slow < fast


def test_likelihood_decreases_with_latency():
    near = make_model(rtt_ms=20.0)
    far = make_model(rtt_ms=300.0)
    assert (far.record_likelihood(0, 1, 0.002)
            < near.record_likelihood(0, 1, 0.002))


def test_transaction_likelihood_is_product():
    model = make_model()
    single = model.record_likelihood(0, 1, 0.002)
    double = model.transaction_likelihood(0, [(1, 0.002), (1, 0.002)])
    assert double == pytest.approx(single ** 2)


def test_bigger_previous_transactions_lower_likelihood():
    small = make_model(size_distribution={1: 1.0})
    large = make_model(size_distribution={4: 1.0})
    assert (large.record_likelihood(0, 1, 0.002)
            < small.record_likelihood(0, 1, 0.002))


def test_conflict_window_deterministic_case():
    # With constant 40ms RTTs, 3 DCs, majority quorum: the quorum wait
    # at the leader is one remote round trip (40ms; the local vote is
    # instant, the 2nd vote arrives at 40ms).  learned + commit +
    # propose add three one-way hops, but their size depends on
    # client/leader placement; the window must sit in a plausible
    # 40-160ms band and never be negative.
    model = make_model(rtt_ms=40.0)
    window = model.conflict_window_pmf(0, 1)
    assert 40.0 <= window.mean() <= 160.0


def test_commit_time_pmf_scales_with_leaders():
    model = make_model(rtt_ms=40.0)
    one = model.commit_time_pmf(0, [1])
    # Max over more leaders cannot be faster.
    three = model.commit_time_pmf(0, [1, 2, 0])
    assert three.mean() >= one.mean() - 1e-9
    # A remote leader costs propose + quorum + learned >= 2 one-way
    # remote hops + one remote round trip ~= 80ms.
    assert one.mean() >= 75.0


# ---------------------------------------------------------------- accuracy


def test_model_accuracy_against_monte_carlo():
    """Eq. 8b should match a direct Monte-Carlo simulation of the
    conflict window within a few percent (uniform topology)."""
    streams = RandomStreams(seed=3)
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.1)
    matrix = OracleLatencySource(topo, streams, samples=3000,
                                 bin_ms=1.0, n_bins=512).latency_matrix()
    model = CommitLikelihoodModel(matrix, [1 / 3] * 3)
    model.precompute()

    rng = streams.get("mc")
    lam = 0.004  # updates per ms

    def sample_window():
        leader_prev = rng.randrange(3)
        cp = rng.randrange(3)
        cc, l_cur = 0, 1

        def one_way(a, b):
            if a == b:
                return 0.25
            return topo.latency(a, b).sample(rng)

        # quorum (majority of 3) at previous leader: 2nd fastest of
        # [local, rtt, rtt]; the local vote is ~instant so it's the
        # faster of the two remote round trips.
        rtts = sorted(
            one_way(leader_prev, b) + one_way(b, leader_prev)
            for b in range(3) if b != leader_prev)
        quorum = min(rtts)
        learned = one_way(leader_prev, cp)
        commit = one_way(cp, cc)
        propose = one_way(cc, l_cur)
        return quorum + learned + commit + propose

    trials = 4000
    import math as m
    mc = sum(m.exp(-lam * sample_window()) for _ in range(trials)) / trials
    predicted = model.record_likelihood(0, 1, lam)
    assert predicted == pytest.approx(mc, abs=0.05)


def test_ec2_matrix_precompute_runs():
    streams = RandomStreams(seed=4)
    topo = ec2_five_dc(spike_prob=0.0)
    matrix = OracleLatencySource(topo, streams, samples=500,
                                 bin_ms=2.0, n_bins=1024).latency_matrix()
    model = CommitLikelihoodModel(matrix, [0.2] * 5,
                                  size_distribution={1: 0.4, 2: 0.3,
                                                     3: 0.2, 4: 0.1})
    model.precompute()
    likelihood = model.transaction_likelihood(0, [(3, 0.001), (2, 0.0005)])
    assert 0.0 < likelihood < 1.0
