"""Seed stability: the same seed must reproduce byte-identical runs.

The whole check subsystem rests on this — a failing fuzz seed is only
a bug report if replaying it reproduces the exact same history — so
regressions here are caught at the digest level, for both the fuzzer's
own runs and the experiment harness.
"""

import hashlib
import json

from repro.check import run_check
from repro.check.runner import CheckConfig
from repro.harness.experiment import Experiment, ExperimentConfig

CONFIG = CheckConfig(seed=7, n_txns=20, n_faults=4)


def test_same_seed_gives_identical_history_digest():
    first = run_check(CONFIG)
    second = run_check(CONFIG)
    assert first.history.digest() == second.history.digest()
    assert len(first.history) == len(second.history)
    assert first.stats == second.stats


def test_different_seeds_diverge():
    first = run_check(CONFIG)
    import dataclasses
    second = run_check(dataclasses.replace(CONFIG, seed=8))
    assert first.history.digest() != second.history.digest()


def test_replayed_schedule_reproduces_the_run():
    first = run_check(CONFIG)
    replay = run_check(CONFIG, schedule=first.schedule)
    assert replay.history.digest() == first.history.digest()


def _experiment_digest(seed: int) -> str:
    config = ExperimentConfig(
        name="digest-probe", seed=seed, system="traditional",
        topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
        partitions_per_dc=1, n_items=100, rate_tps=100.0,
        warmup_ms=500.0, duration_ms=2_000.0, drain_ms=1_500.0)
    result = Experiment(config).run()
    records = [
        (record.issued_ms, record.decided_ms, record.committed,
         record.size, record.hot)
        for record in result.metrics.records
    ]
    blob = json.dumps({"summary": result.summary(), "records": records},
                      sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def test_experiment_metrics_digest_is_seed_stable():
    assert _experiment_digest(seed=3) == _experiment_digest(seed=3)


def test_experiment_metrics_digest_depends_on_seed():
    assert _experiment_digest(seed=3) != _experiment_digest(seed=4)
