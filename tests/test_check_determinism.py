"""Seed stability: the same seed must reproduce byte-identical runs.

The whole check subsystem rests on this — a failing fuzz seed is only
a bug report if replaying it reproduces the exact same history — so
regressions here are caught at the digest level, for both the fuzzer's
own runs and the experiment harness.
"""

import dataclasses
import hashlib
import json
import sys

import pytest

from repro.check import run_check
from repro.check.runner import CheckConfig, fuzz_sweep
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.parallel import run_experiments

CONFIG = CheckConfig(seed=7, n_txns=20, n_faults=4)

#: Digests captured on CPython 3.11 *before* the kernel/transport
#: hot-path optimization (__slots__, event pooling, bound latency
#: samplers).  The optimized code must reproduce them byte for byte —
#: any drift means the "optimization" changed scheduling or rng draw
#: order, i.e. it changed behaviour.  The Mersenne Twister stream is
#: version-stable but the variate *algorithms* are only promised
#: stable within a feature release, so the golden comparison runs on
#: the capturing version; the relative tests above cover the rest.
GOLDEN_CHECK_DIGESTS = {
    7: "45f5bfa5f7e34e10c4c6158d020aca22fd4478fc858fa1e7e4bb8b9a5cbf2329",
    11: "87f2cad48a3bace299d1b0b78ac2fe5adb1dff2afcdffe501a23374e47d8451d",
    23: "b30a4b7519715f5d6a6ac1c015e1f8afe4541639b4f33d8ae606dcd67122b249",
    42: "7d13da683d8ed7c57a4809b6f68c40fe2903a323a4af256eb0dfde12fcf32e1f",
}

GOLDEN_EXPERIMENT_DIGESTS = {
    3: "460d27f20198e2f7538f42bbf9590b658834f7b40ad936e4c14ca28cd1204d47",
    4: "f42fda6a7256a1768292953395cf121ef5da08822eba818ed579d1eee5e81783",
    5: "4644b2668967c7bdbb3a5de82702d6b5c187583bd7d9a22ce4aa5754ec255b28",
}


def test_same_seed_gives_identical_history_digest():
    first = run_check(CONFIG)
    second = run_check(CONFIG)
    assert first.history.digest() == second.history.digest()
    assert len(first.history) == len(second.history)
    assert first.stats == second.stats


def test_different_seeds_diverge():
    first = run_check(CONFIG)
    second = run_check(dataclasses.replace(CONFIG, seed=8))
    assert first.history.digest() != second.history.digest()


def test_replayed_schedule_reproduces_the_run():
    first = run_check(CONFIG)
    replay = run_check(CONFIG, schedule=first.schedule)
    assert replay.history.digest() == first.history.digest()


def _experiment_digest(seed: int) -> str:
    config = ExperimentConfig(
        name="digest-probe", seed=seed, system="traditional",
        topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
        partitions_per_dc=1, n_items=100, rate_tps=100.0,
        warmup_ms=500.0, duration_ms=2_000.0, drain_ms=1_500.0)
    result = Experiment(config).run()
    records = [
        (record.issued_ms, record.decided_ms, record.committed,
         record.size, record.hot)
        for record in result.metrics.records
    ]
    blob = json.dumps({"summary": result.summary(), "records": records},
                      sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def test_experiment_metrics_digest_is_seed_stable():
    assert _experiment_digest(seed=3) == _experiment_digest(seed=3)


def test_experiment_metrics_digest_depends_on_seed():
    assert _experiment_digest(seed=3) != _experiment_digest(seed=4)


_on_capture_version = pytest.mark.skipif(
    sys.version_info[:2] != (3, 11),
    reason="golden digests captured on CPython 3.11; variate algorithms "
           "are only promised stable within a feature release")


@_on_capture_version
def test_check_digests_match_pre_optimization_goldens():
    for seed, expected in GOLDEN_CHECK_DIGESTS.items():
        result = run_check(CheckConfig(seed=seed, n_txns=20, n_faults=4))
        assert result.history.digest() == expected, (
            f"seed {seed}: optimized kernel diverged from the "
            "pre-optimization history")


@_on_capture_version
def test_experiment_digests_match_pre_optimization_goldens():
    for seed, expected in GOLDEN_EXPERIMENT_DIGESTS.items():
        assert _experiment_digest(seed=seed) == expected, (
            f"seed {seed}: optimized kernel diverged from the "
            "pre-optimization experiment metrics")


def _sweep_digests(processes: int):
    seeds = [7, 11, 23]
    digests = {}
    fuzz_sweep(seeds, processes=processes,
               on_result=lambda result: digests.__setitem__(
                   result.config.seed, result.history.digest()))
    return digests


def test_parallel_fuzz_sweep_matches_serial():
    serial = _sweep_digests(processes=1)
    parallel = _sweep_digests(processes=2)
    assert set(serial) == {7, 11, 23}
    assert serial == parallel


def test_parallel_experiments_match_serial():
    configs = [
        ExperimentConfig(
            name=f"par-probe-{seed}", seed=seed, system="traditional",
            topology="uniform", n_datacenters=3, uniform_one_way_ms=20.0,
            partitions_per_dc=1, n_items=100, rate_tps=100.0,
            warmup_ms=500.0, duration_ms=1_000.0, drain_ms=1_000.0)
        for seed in (3, 4, 5)
    ]
    serial = run_experiments(configs, processes=1)
    parallel = run_experiments(configs, processes=2)
    assert [r.config.name for r in parallel] == [c.name for c in configs]
    for one, two in zip(serial, parallel):
        assert one.summary() == two.summary()
        assert ([dataclasses.astuple(rec) for rec in one.metrics.records]
                == [dataclasses.astuple(rec) for rec in two.metrics.records])
