"""Exact checker verdicts on hand-built histories.

Each invariant gets a minimal legal history (no violations) and a
minimal illegal one (exactly the expected violation), so a checker
regression shows up as a precise diff rather than a flaky fuzz run.
"""

import pytest

from repro.check import History, check_history
from repro.check.invariants import (
    CHECKS,
    check_ballot_monotonic,
    check_collision_safety,
    check_decision_agreement,
    check_fast_quorum,
    check_mode_monotonic,
    check_quorum_durability,
    check_read_committed,
    check_unique_chosen,
    check_version_monotonic,
)

B1 = (1, "storage/0/0")
B2 = (2, "storage/1/0")
B3 = (3, "storage/2/0")
#: The fast ballot of round 0, as histories carry it.
FB = (0, "*")


def with_meta(quorum: int = 2) -> History:
    return History().append(0.0, "cluster_meta", n_datacenters=3,
                            partitions_per_dc=1, quorum=quorum)


def with_fast_meta(quorum: int = 2, fast_quorum: int = 3) -> History:
    return History().append(0.0, "cluster_meta", n_datacenters=3,
                            partitions_per_dc=1, quorum=quorum,
                            fast_quorum=fast_quorum)


def codes(violations) -> list:
    return [violation.code for violation in violations]


# -- CHK001: ballot monotonicity -------------------------------------------


def test_monotone_ballots_are_legal():
    history = (History()
               .append(1.0, "promise", "storage/0/0", key="k", ballot=B1,
                       granted=True, prev=None)
               .append(2.0, "phase2b", "storage/0/0", key="k", seq=1,
                       ballot=B1, accepted=True, promised=B1,
                       txid="t1", decision="accepted")
               .append(3.0, "promise", "storage/0/0", key="k", ballot=B2,
                       granted=True, prev=B1)
               .append(4.0, "phase2b", "storage/0/0", key="k", seq=1,
                       ballot=B2, accepted=True, promised=B2,
                       txid="t2", decision="accepted"))
    assert check_ballot_monotonic(history) == []


def test_promise_below_promise_is_flagged():
    history = (History()
               .append(1.0, "promise", "storage/0/0", key="k", ballot=B3,
                       granted=True, prev=None)
               .append(2.0, "promise", "storage/0/0", key="k", ballot=B1,
                       granted=True, prev=B3))
    violations = check_ballot_monotonic(history)
    assert codes(violations) == ["CHK001"]
    assert violations[0].evidence == (0, 1)


def test_accept_below_promise_is_flagged():
    history = (History()
               .append(1.0, "promise", "storage/1/0", key="k", ballot=B2,
                       granted=True, prev=None)
               .append(2.0, "phase2b", "storage/1/0", key="k", seq=4,
                       ballot=B1, accepted=True, promised=B2,
                       txid="t1", decision="accepted"))
    assert codes(check_ballot_monotonic(history)) == ["CHK001"]


def test_refusing_a_higher_ballot_is_flagged():
    history = History().append(
        1.0, "promise", "storage/0/0", key="k", ballot=B3,
        granted=False, prev=B1)
    assert codes(check_ballot_monotonic(history)) == ["CHK001"]


def test_equal_ballot_accept_is_legal():
    history = (History()
               .append(1.0, "promise", "storage/0/0", key="k", ballot=B2,
                       granted=True, prev=None)
               .append(2.0, "phase2b", "storage/0/0", key="k", seq=1,
                       ballot=B2, accepted=True, promised=B2,
                       txid="t1", decision="accepted"))
    assert check_ballot_monotonic(history) == []


# -- CHK002: unique chosen value -------------------------------------------


def test_same_value_on_all_replicas_is_legal():
    history = History()
    for node in ("storage/0/0", "storage/1/0"):
        history.append(1.0, "phase2b", node, key="k", seq=7, ballot=B1,
                       accepted=True, promised=B1, txid="t1",
                       decision="accepted")
    assert check_unique_chosen(history) == []


def test_two_values_at_one_ballot_is_flagged():
    history = (History()
               .append(1.0, "phase2b", "storage/0/0", key="k", seq=7,
                       ballot=B1, accepted=True, promised=B1,
                       txid="t1", decision="accepted")
               .append(2.0, "phase2b", "storage/1/0", key="k", seq=7,
                       ballot=B1, accepted=True, promised=B1,
                       txid="t2", decision="accepted"))
    violations = check_unique_chosen(history)
    assert codes(violations) == ["CHK002"]
    assert violations[0].evidence == (0, 1)


def test_reproposal_under_higher_ballot_is_legal():
    # A mastership transfer may re-run an instance at a higher ballot —
    # that is Paxos working, not a split decision.
    history = (History()
               .append(1.0, "phase2b", "storage/0/0", key="k", seq=7,
                       ballot=B1, accepted=True, promised=B1,
                       txid="t1", decision="accepted")
               .append(2.0, "phase2b", "storage/0/0", key="k", seq=7,
                       ballot=B2, accepted=True, promised=B2,
                       txid="t2", decision="accepted"))
    assert check_unique_chosen(history) == []


# -- CHK003: decision agreement ---------------------------------------------


def _decided_commit(history: History, txid: str = "t1",
                    key: str = "k") -> History:
    return (history
            .append(1.0, "tx_learned", "client/a", txid=txid, key=key,
                    decision="accepted")
            .append(2.0, "tx_decided", "client/a", txid=txid,
                    committed=True, keys=(key,)))


def test_agreeing_commit_is_legal():
    history = _decided_commit(History())
    history.append(3.0, "visibility_applied", "storage/0/0", txid="t1",
                   commit=True, keys=("k",))
    history.append(3.0, "version_visible", "storage/0/0", key="k",
                   version=2, value=9, txid="t1")
    assert check_decision_agreement(history) == []


def test_double_decision_is_flagged():
    history = _decided_commit(History())
    history.append(4.0, "tx_decided", "client/a", txid="t1",
                   committed=False, keys=("k",))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_commit_over_rejected_option_is_flagged():
    history = (History()
               .append(1.0, "tx_learned", "client/a", txid="t1", key="k",
                       decision="rejected")
               .append(2.0, "tx_decided", "client/a", txid="t1",
                       committed=True, keys=("k",)))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_abort_without_rejection_is_flagged():
    history = (History()
               .append(1.0, "tx_learned", "client/a", txid="t1", key="k",
                       decision="accepted")
               .append(2.0, "tx_decided", "client/a", txid="t1",
                       committed=False, keys=("k",)))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_replica_commit_of_aborted_tx_is_flagged():
    history = (History()
               .append(1.0, "tx_learned", "client/a", txid="t1", key="k",
                       decision="rejected")
               .append(2.0, "tx_decided", "client/a", txid="t1",
                       committed=False, keys=("k",))
               .append(3.0, "visibility_applied", "storage/0/0",
                       txid="t1", commit=True, keys=("k",)))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_visibility_of_undecided_tx_is_flagged():
    history = History().append(
        3.0, "visibility_applied", "storage/0/0", txid="ghost",
        commit=True, keys=("k",))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_visible_write_of_aborted_tx_is_flagged():
    history = (History()
               .append(1.0, "tx_learned", "client/a", txid="t1", key="k",
                       decision="rejected")
               .append(2.0, "tx_decided", "client/a", txid="t1",
                       committed=False, keys=("k",))
               .append(3.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1"))
    assert codes(check_decision_agreement(history)) == ["CHK003"]


def test_bulk_loaded_versions_need_no_transaction():
    history = History().append(0.0, "version_visible", "storage/0/0",
                               key="k", version=1, value=10, txid="")
    assert check_decision_agreement(history) == []


# -- CHK004: read-committed visibility --------------------------------------


def test_reading_the_latest_visible_version_is_legal():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1")
               .append(2.0, "read_reply", "storage/0/0", key="k",
                       version=2, value=9, as_of=None, exists=True,
                       reader="client/a"))
    assert check_read_committed(history) == []


def test_reading_before_any_version_returns_zero():
    history = History().append(
        1.0, "read_reply", "storage/0/0", key="k", version=0, value=None,
        as_of=None, exists=False, reader="client/a")
    assert check_read_committed(history) == []


def test_stale_read_is_flagged():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1")
               .append(2.0, "read_reply", "storage/0/0", key="k",
                       version=1, value=10, as_of=None, exists=True,
                       reader="client/a"))
    violations = check_read_committed(history)
    assert codes(violations) == ["CHK004"]
    assert violations[0].evidence == (1, 2)


def test_phantom_read_is_flagged():
    history = History().append(
        1.0, "read_reply", "storage/0/0", key="k", version=3, value=7,
        as_of=None, exists=True, reader="client/a")
    assert codes(check_read_committed(history)) == ["CHK004"]


def test_point_in_time_read_of_old_version_is_legal():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1")
               .append(2.0, "read_reply", "storage/0/0", key="k",
                       version=1, value=10, as_of=0.5, exists=True,
                       reader="client/a"))
    assert check_read_committed(history) == []


def test_point_in_time_read_of_unknown_version_is_flagged():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(2.0, "read_reply", "storage/0/0", key="k",
                       version=5, value=3, as_of=1.0, exists=True,
                       reader="client/a"))
    assert codes(check_read_committed(history)) == ["CHK004"]


def test_visibility_is_tracked_per_replica():
    # Version 2 visible on another node must not satisfy this node.
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(1.0, "version_visible", "storage/1/0", key="k",
                       version=2, value=9, txid="t1")
               .append(2.0, "read_reply", "storage/1/0", key="k",
                       version=1, value=10, as_of=None, exists=True,
                       reader="client/a"))
    assert codes(check_read_committed(history)) == ["CHK004"]


# -- CHK005: quorum durability ----------------------------------------------


def _accept(history: History, node: str, txid: str = "t1",
            ts: float = 1.0) -> History:
    return history.append(ts, "phase2b", node, key="k", seq=1, ballot=B1,
                          accepted=True, promised=B1, txid=txid,
                          decision="accepted")


def test_majority_accepted_commit_is_legal():
    history = with_meta(quorum=2)
    _accept(history, "storage/0/0")
    _accept(history, "storage/1/0")
    history.append(2.0, "tx_decided", "client/a", txid="t1",
                   committed=True, keys=("k",))
    assert check_quorum_durability(history) == []


def test_minority_commit_is_flagged():
    history = with_meta(quorum=2)
    _accept(history, "storage/0/0")
    history.append(2.0, "tx_decided", "client/a", txid="t1",
                   committed=True, keys=("k",))
    violations = check_quorum_durability(history)
    assert codes(violations) == ["CHK005"]
    assert "quorum is 2" in violations[0].message


def test_accepts_after_the_decision_do_not_count():
    history = with_meta(quorum=2)
    _accept(history, "storage/0/0")
    history.append(2.0, "tx_decided", "client/a", txid="t1",
                   committed=True, keys=("k",))
    _accept(history, "storage/1/0", ts=3.0)
    assert codes(check_quorum_durability(history)) == ["CHK005"]


def test_duplicate_accepts_from_one_node_do_not_count_twice():
    history = with_meta(quorum=2)
    _accept(history, "storage/0/0")
    _accept(history, "storage/0/0", ts=1.5)
    history.append(2.0, "tx_decided", "client/a", txid="t1",
                   committed=True, keys=("k",))
    assert codes(check_quorum_durability(history)) == ["CHK005"]


def test_aborts_need_no_quorum():
    history = with_meta(quorum=2)
    history.append(2.0, "tx_decided", "client/a", txid="t1",
                   committed=False, keys=("k",))
    assert check_quorum_durability(history) == []


# -- CHK006: version monotonicity --------------------------------------------


def test_forward_versions_are_legal():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1"))
    assert check_version_monotonic(history) == []


def test_version_regression_is_flagged():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=1, value=10, txid="t2"))
    assert codes(check_version_monotonic(history)) == ["CHK006"]


def test_repeated_version_is_flagged():
    history = (History()
               .append(0.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t1")
               .append(1.0, "version_visible", "storage/0/0", key="k",
                       version=2, value=9, txid="t2"))
    assert codes(check_version_monotonic(history)) == ["CHK006"]


# -- CHK007: fast-quorum soundness --------------------------------------------


def _fast_vote(history: History, ts: float, node: str, seq: int = 0,
               txid: str = "t1", decision: str = "accepted",
               ballot=FB) -> History:
    return history.append(ts, "phase2b", node, key="k", seq=seq,
                          ballot=ballot, accepted=True, promised=ballot,
                          txid=txid, decision=decision)


def test_fast_chosen_with_full_fast_quorum_is_legal():
    history = with_fast_meta(fast_quorum=3)
    for ts, node in enumerate(("storage/0/0", "storage/1/0",
                               "storage/2/0"), start=1):
        _fast_vote(history, float(ts), node)
    history.append(4.0, "fast_chosen", "client/c", key="k", seq=0,
                   txid="t1", decision="accepted", votes=3)
    assert check_fast_quorum(history) == []


def test_fast_chosen_below_fast_quorum_is_flagged():
    history = with_fast_meta(fast_quorum=3)
    _fast_vote(history, 1.0, "storage/0/0")
    _fast_vote(history, 2.0, "storage/1/0")
    history.append(3.0, "fast_chosen", "client/c", key="k", seq=0,
                   txid="t1", decision="accepted", votes=2)
    assert codes(check_fast_quorum(history)) == ["CHK007"]


def test_votes_at_other_instances_do_not_count_toward_the_quorum():
    # Three votes, but scattered across instances: a collision, not a
    # quorum — claiming a fast-learned verdict anyway is the bug.
    history = with_fast_meta(fast_quorum=3)
    _fast_vote(history, 1.0, "storage/0/0", seq=0)
    _fast_vote(history, 2.0, "storage/1/0", seq=1)
    _fast_vote(history, 3.0, "storage/2/0", seq=0)
    history.append(4.0, "fast_chosen", "client/c", key="k", seq=0,
                   txid="t1", decision="accepted", votes=3)
    assert codes(check_fast_quorum(history)) == ["CHK007"]


def test_chk007_skips_classic_histories():
    # No fast_quorum in the meta: a classic run (or a pre-fast
    # history) is never judged against fast rules.
    history = with_meta()
    history.append(1.0, "fast_chosen", "client/c", key="k", seq=0,
                   txid="t1", decision="accepted", votes=0)
    assert check_fast_quorum(history) == []


# -- CHK008: collision-recovery safety ----------------------------------------


def test_classic_recovery_of_the_same_value_is_legal():
    # Fast quorum chooses t1 at (k, 0); the recovery re-proposes the
    # *same* transaction classically — allowed (idempotent learn).
    history = with_fast_meta(quorum=2, fast_quorum=3)
    for ts, node in enumerate(("storage/0/0", "storage/1/0",
                               "storage/2/0"), start=1):
        _fast_vote(history, float(ts), node)
    for ts, node in enumerate(("storage/0/0", "storage/1/0"), start=4):
        _fast_vote(history, float(ts), node, ballot=B1, txid="t1")
    assert check_collision_safety(history) == []


def test_classic_recovery_overwriting_a_fast_choice_is_flagged():
    history = with_fast_meta(quorum=2, fast_quorum=3)
    for ts, node in enumerate(("storage/0/0", "storage/1/0",
                               "storage/2/0"), start=1):
        _fast_vote(history, float(ts), node, txid="t1")
    for ts, node in enumerate(("storage/0/0", "storage/1/0"), start=4):
        _fast_vote(history, float(ts), node, ballot=B1, txid="t2")
    assert codes(check_collision_safety(history)) == ["CHK008"]


def test_classic_over_classic_reproposal_is_chk002_territory():
    # Two classic quorums on different txids at one instance can be a
    # legitimate higher-ballot re-proposal after a mastership
    # transfer; CHK008 only polices the fast/classic boundary.
    history = with_fast_meta(quorum=2, fast_quorum=3)
    for ts, node in enumerate(("storage/0/0", "storage/1/0"), start=1):
        _fast_vote(history, float(ts), node, ballot=B1, txid="t1")
    for ts, node in enumerate(("storage/0/0", "storage/1/0"), start=3):
        _fast_vote(history, float(ts), node, ballot=B2, txid="t2")
    assert check_collision_safety(history) == []


def test_partial_fast_votes_do_not_pin_the_instance():
    # Two fast votes (below the quorum of 3) never constitute a
    # choice, so a classic round winning the instance is fine.
    history = with_fast_meta(quorum=2, fast_quorum=3)
    _fast_vote(history, 1.0, "storage/0/0", txid="t1")
    _fast_vote(history, 2.0, "storage/1/0", txid="t1")
    for ts, node in enumerate(("storage/0/0", "storage/1/0"), start=3):
        _fast_vote(history, float(ts), node, ballot=B1, txid="t2")
    assert check_collision_safety(history) == []


# -- CHK009: fast→classic monotonicity ----------------------------------------


def _fast_lifecycle(*etypes) -> History:
    history = with_fast_meta()
    for ts, etype in enumerate(etypes, start=1):
        history.append(float(ts), etype, "client/c", txid="t1", key="k")
    return history


def test_fast_round_lifecycles_are_legal():
    assert check_mode_monotonic(
        _fast_lifecycle("fast_propose", "fast_chosen")) == []
    assert check_mode_monotonic(
        _fast_lifecycle("fast_propose", "fast_fallback")) == []
    # Distinct keys of one transaction run independent fast rounds.
    history = (with_fast_meta()
               .append(1.0, "fast_propose", "client/c", txid="t1", key="a")
               .append(2.0, "fast_propose", "client/c", txid="t1", key="b")
               .append(3.0, "fast_chosen", "client/c", txid="t1", key="a")
               .append(4.0, "fast_fallback", "client/c", txid="t1", key="b"))
    assert check_mode_monotonic(history) == []


def test_fast_round_resurrection_is_flagged():
    # Once fallen back, the (txid, key) pair must stay classic.
    violations = check_mode_monotonic(
        _fast_lifecycle("fast_propose", "fast_fallback", "fast_chosen"))
    assert codes(violations) == ["CHK009"]


def test_terminal_without_a_proposal_is_flagged():
    assert codes(check_mode_monotonic(
        _fast_lifecycle("fast_chosen"))) == ["CHK009"]


def test_repeated_fast_proposal_is_flagged():
    assert codes(check_mode_monotonic(
        _fast_lifecycle("fast_propose", "fast_propose"))) == ["CHK009"]


# -- the catalogue ------------------------------------------------------------


def test_check_history_runs_every_checker():
    history = with_meta(quorum=2)
    history.append(1.0, "version_visible", "storage/0/0", key="k",
                   version=2, value=9, txid="ghost")
    history.append(2.0, "version_visible", "storage/0/0", key="k",
                   version=1, value=10, txid="")
    found = codes(check_history(history))
    assert "CHK003" in found  # ghost transaction became visible
    assert "CHK006" in found  # version went backwards


def test_check_history_rejects_unknown_codes():
    with pytest.raises(ValueError):
        check_history(History(), codes=["CHK999"])


def test_catalogue_is_complete():
    assert list(CHECKS) == [f"CHK00{i}" for i in range(1, 10)]
