"""Tier-1 gate: the tree itself passes its own static analysis.

A determinism or protocol violation introduced anywhere under ``src/``
(or in the test suite) fails this test with the offending
``path:line: CODE message`` lines — the lint is part of the regular
pytest run, not a separate CI-only step.
"""

from pathlib import Path

from repro.analysis import analyze_paths

ROOT = Path(__file__).resolve().parent.parent


def test_tree_is_violation_free():
    report = analyze_paths([
        str(ROOT / "src"),
        str(ROOT / "tests"),
        str(ROOT / "benchmarks"),
        str(ROOT / "examples"),
    ])
    assert report.ok, "static analysis found violations:\n" + "\n".join(
        diag.format() for diag in report.diagnostics)
    # Guard against a broken walker vacuously passing: the tree has
    # far more than 50 Python files, and exactly one sanctioned
    # suppression (the RandomStreams factory) must have been honoured.
    assert report.files_analyzed > 50
    assert report.suppressed >= 1
