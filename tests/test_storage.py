"""Unit tests for records, updates, and access-rate tracking."""

import pytest

from repro.storage import AccessRateTracker, Record, Update


# ---------------------------------------------------------------- updates


def test_update_set_and_delta():
    assert Update.set(5).apply_to(99) == 5
    assert Update.delta(-3).apply_to(10) == 7
    assert Update.delta(4).apply_to(None) == 4


def test_update_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Update(kind="merge", value=1)


def test_update_delta_requires_number():
    with pytest.raises(TypeError):
        Update.delta("oops")


def test_update_floor_admissibility():
    decrement = Update.delta(-5, floor=0)
    assert decrement.admissible_on(5)
    assert not decrement.admissible_on(4)
    assert Update.delta(-5).admissible_on(0)  # no floor -> always
    assert Update.set("x").admissible_on(None)


# ---------------------------------------------------------------- records


def test_record_pending_lifecycle_commit():
    record = Record(key="k", value=10, version=1)
    record.add_pending("tx1", Update.delta(-4))
    assert record.has_pending_option
    assert record.value == 10  # pending is invisible to reads
    assert record.commit_pending("tx1")
    assert record.value == 6
    assert record.version == 2
    assert not record.has_pending_option


def test_record_pending_lifecycle_abort():
    record = Record(key="k", value=10, version=1)
    record.add_pending("tx1", Update.delta(-4))
    record.clear_pending("tx1")
    assert record.value == 10
    assert record.version == 1
    assert not record.has_pending_option


def test_record_commit_unknown_txid_is_noop():
    record = Record(key="k", value=10, version=1)
    assert not record.commit_pending("ghost")
    assert record.value == 10


def test_record_multiple_pending_options():
    # Replicas can hold two in-flight options when visibility messages
    # race with the next option's phase2a.
    record = Record(key="k", value=10, version=1)
    record.add_pending("tx1", Update.delta(-1))
    record.add_pending("tx2", Update.delta(-2))
    assert record.commit_pending("tx2")
    assert record.value == 8
    assert record.commit_pending("tx1")
    assert record.value == 7
    assert record.version == 3


# ---------------------------------------------------------------- access rate


def test_access_rate_zero_without_accesses():
    tracker = AccessRateTracker()
    assert tracker.arrival_rate("k", now_ms=0.0) == 0.0


def test_access_rate_counts_within_window():
    tracker = AccessRateTracker(bucket_ms=10_000, keep_buckets=6)
    for t in range(0, 60_000, 1000):  # one access per second for 60s
        tracker.record_access("k", now_ms=float(t))
    rate = tracker.arrival_rate("k", now_ms=59_999.0)
    assert rate == pytest.approx(1 / 1000.0, rel=0.01)  # 1/s in per-ms


def test_access_rate_no_cold_start_underestimate():
    # 0.2 updates/s for the first 5 seconds of a run: the estimate must
    # divide by the elapsed 5s, not the full 60s window.
    tracker = AccessRateTracker(bucket_ms=10_000, keep_buckets=6)
    for t in range(0, 5_000, 1000):
        tracker.record_access("k", now_ms=float(t))
    rate = tracker.arrival_rate("k", now_ms=5_000.0)
    assert rate == pytest.approx(5 / 5_000.0)


def test_access_rate_ages_out():
    tracker = AccessRateTracker(bucket_ms=10_000, keep_buckets=6)
    for _ in range(100):
        tracker.record_access("k", now_ms=0.0)
    # Right after, rate is high; 10 minutes later all buckets aged out.
    assert tracker.arrival_rate("k", now_ms=1.0) > 0
    assert tracker.arrival_rate("k", now_ms=600_000.0) == 0.0


def test_access_rate_keeps_limited_buckets():
    tracker = AccessRateTracker(bucket_ms=10.0, keep_buckets=2)
    tracker.record_access("k", now_ms=0.0)
    tracker.record_access("k", now_ms=10.0)
    tracker.record_access("k", now_ms=20.0)
    assert tracker._buckets["k"][0][0] == 1  # oldest bucket dropped


def test_access_rate_forget_stale():
    tracker = AccessRateTracker(bucket_ms=10.0, keep_buckets=2)
    tracker.record_access("old", now_ms=0.0)
    tracker.record_access("new", now_ms=100.0)
    tracker.forget_stale(now_ms=100.0)
    assert tracker.tracked_keys() == 1


def test_access_rate_validation():
    with pytest.raises(ValueError):
        AccessRateTracker(bucket_ms=0)
    with pytest.raises(ValueError):
        AccessRateTracker(keep_buckets=0)
