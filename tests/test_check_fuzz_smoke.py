"""Tier-1 fuzz smoke: a small fixed sweep must be clean, and a
deliberately broken protocol must be caught and shrunk.

The sweep uses a reduced configuration (fewer transactions, drop and
crash faults only) so it finishes in seconds; the nightly CI job runs
the full-width sweep.
"""

import pytest

from repro.check import fuzz_sweep, run_check, shrink
from repro.check.faults import FAST_KINDS
from repro.check.runner import CheckConfig
from repro.paxos import PaxosRound

SMOKE = CheckConfig(n_txns=20, n_faults=4, fault_kinds=("drop", "crash"))
FAST_SMOKE = CheckConfig(n_txns=20, n_faults=4, fault_kinds=FAST_KINDS,
                         mode="fast")


def test_smoke_sweep_is_clean():
    failures = fuzz_sweep(range(20), SMOKE)
    reports = "\n\n".join(failure.report() for failure in failures)
    assert not failures, f"invariant violations in smoke sweep:\n{reports}"


def test_runs_produce_substantial_histories():
    result = run_check(SMOKE)
    assert result.ok
    counts = result.history.counts()
    # Every layer's hook fired: transport, coordinator, leader,
    # acceptor, and replica events all present.
    for etype in ("cluster_meta", "send", "deliver", "tx_begin",
                  "propose", "round_start", "round_decided", "phase2b",
                  "option", "tx_decided", "read_reply",
                  "version_visible", "visibility_applied"):
        assert counts.get(etype, 0) > 0, f"no {etype!r} events recorded"
    assert result.stats["committed"] > 0


class _MajoritySkippingRound(PaxosRound):
    """The seeded bug: the leader treats a single accept as a quorum,
    skipping the majority check entirely."""

    def __init__(self, env, endpoint, replicas, phase2a, quorum,
                 timeout_ms=None, **kwargs):
        super().__init__(env, endpoint, replicas, phase2a, 1,
                         timeout_ms=timeout_ms, **kwargs)


def test_seeded_majority_bug_is_caught_and_shrunk(monkeypatch):
    monkeypatch.setattr("repro.storage.node.PaxosRound",
                        _MajoritySkippingRound)
    failure = None
    for seed in range(10):
        result = run_check(
            CheckConfig(seed=seed, n_txns=20, n_faults=4,
                        fault_kinds=("drop", "crash")))
        if not result.ok:
            failure = result
            break
    assert failure is not None, \
        "seeded majority-check bug survived 10 fuzz seeds"
    assert "CHK005" in [violation.code for violation in failure.violations]

    shrunk = shrink(failure)
    assert not shrunk.result.ok
    assert "CHK005" in [violation.code
                        for violation in shrunk.result.violations]
    # The reproduction got no bigger in either dimension.
    assert shrunk.config.n_txns <= failure.config.n_txns
    assert len(shrunk.schedule) <= len(failure.schedule)
    # The report names the fault schedule and the implicated events.
    report = shrunk.result.report()
    assert "CHK005" in report and "fault schedule" in report


def test_cli_fuzz_and_list(capsys, tmp_path):
    from repro.check.__main__ import main

    assert main(["fuzz", "--seeds", "2", "--txns", "10",
                 "--faults", "2"]) == 0
    assert "no invariant violations" in capsys.readouterr().out
    assert main(["list"]) == 0
    assert "CHK005" in capsys.readouterr().out
    assert main(["replay", "--seed", "0", "--txns", "10",
                 "--faults", "2"]) == 0
    out = capsys.readouterr().out
    assert "history digest:" in out and "OK" in out


def test_cli_reports_seeded_bug(capsys, monkeypatch, tmp_path):
    from repro.check.__main__ import main

    monkeypatch.setattr("repro.storage.node.PaxosRound",
                        _MajoritySkippingRound)
    out_dir = tmp_path / "traces"
    code = main(["fuzz", "--seeds", "6", "--txns", "15", "--faults", "3",
                 "--fault-kinds", "drop,crash",
                 "--out", str(out_dir)])
    assert code == 1
    output = capsys.readouterr().out
    assert "FAIL" in output and "CHK005" in output
    traces = list(out_dir.glob("seed-*.trace"))
    assert traces, "failing trace file was not written"
    assert "CHK005" in traces[0].read_text()


@pytest.mark.parametrize("kind", ["drop", "spike", "partition", "crash",
                                  "transfer"])
def test_each_fault_kind_runs_clean(kind):
    result = run_check(CheckConfig(seed=3, n_txns=15, n_faults=3,
                                   fault_kinds=(kind,)))
    assert result.ok, result.report()


# -- fast-ballot mode ---------------------------------------------------------


def test_fast_mode_smoke_sweep_is_clean():
    failures = fuzz_sweep(range(20), FAST_SMOKE)
    reports = "\n\n".join(failure.report() for failure in failures)
    assert not failures, \
        f"invariant violations in fast-mode smoke sweep:\n{reports}"


def test_fast_mode_exercises_fallbacks_across_the_sweep():
    # Over a handful of seeds with the collide fault in the palette,
    # the sweep must hit both fast-path learns and classic recovery.
    chosen = fallbacks = 0
    for seed in range(6):
        result = run_check(CheckConfig(seed=seed, n_txns=15, n_faults=3,
                                       fault_kinds=FAST_KINDS, mode="fast"))
        assert result.ok, result.report()
        chosen += result.stats["fast_chosen"]
        fallbacks += result.stats["fallbacks"]
    assert chosen > 0
    assert fallbacks > 0


@pytest.mark.parametrize("kind", ["drop", "spike", "partition", "crash",
                                  "transfer", "collide"])
def test_each_fault_kind_runs_clean_under_fast_mode(kind):
    result = run_check(CheckConfig(seed=3, n_txns=15, n_faults=3,
                                   fault_kinds=(kind,), mode="fast"))
    assert result.ok, result.report()


def test_cli_fast_mode_fuzz(capsys):
    from repro.check.__main__ import main

    assert main(["fuzz", "--seeds", "2", "--txns", "10",
                 "--faults", "2", "--mode", "fast"]) == 0
    assert "no invariant violations" in capsys.readouterr().out
    assert main(["replay", "--seed", "0", "--txns", "10",
                 "--faults", "2", "--mode", "fast"]) == 0
    out = capsys.readouterr().out
    assert "fast path:" in out and "OK" in out
