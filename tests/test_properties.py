"""Property-based tests (hypothesis) for core invariants.

Covers the PMF algebra behind the likelihood model, ballot ordering,
kernel scheduling order, access patterns, admission policies, and —
most importantly — end-to-end MDCC serialization: across randomized
concurrent workloads, every replica converges to the initial value
plus exactly the committed deltas, and no pending option survives.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.admission import DynamicPolicy, FixedPolicy
from repro.core.histograms import Pmf
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.paxos import Ballot
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp
from repro.workload import HotspotAccess

# ---------------------------------------------------------------- strategies

delays = st.floats(min_value=0.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)
sample_lists = st.lists(delays, min_size=1, max_size=60)


def pmf_from(samples):
    return Pmf.from_samples(samples, bin_ms=2.0, n_bins=512)


# ---------------------------------------------------------------- pmf algebra


@given(sample_lists)
def test_pmf_mass_is_one(samples):
    pmf = pmf_from(samples)
    assert pmf.probs.sum() == pytest.approx(1.0)
    assert (pmf.probs >= 0).all()


@given(sample_lists, sample_lists)
def test_convolution_preserves_mass_and_adds_means(a, b):
    pa, pb = pmf_from(a), pmf_from(b)
    conv = pa.convolve(pb)
    assert conv.probs.sum() == pytest.approx(1.0)
    if max(a) + max(b) < 900:  # no tail saturation in play
        assert conv.mean() == pytest.approx(pa.mean() + pb.mean(), abs=2.1)


@given(sample_lists)
def test_iid_max_is_monotone_in_k(samples):
    pmf = pmf_from(samples)
    means = [pmf.iid_max(k).mean() for k in (1, 2, 4, 8)]
    assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))


@given(st.lists(sample_lists, min_size=2, max_size=5))
def test_quorum_is_monotone_in_quorum_size(groups):
    pmfs = [pmf_from(g) for g in groups]
    means = [Pmf.quorum_of(pmfs, q).mean()
             for q in range(1, len(pmfs) + 1)]
    assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))


@given(st.lists(sample_lists, min_size=2, max_size=5))
def test_full_quorum_equals_max(groups):
    pmfs = [pmf_from(g) for g in groups]
    full = Pmf.quorum_of(pmfs, len(pmfs))
    assert full.mean() == pytest.approx(Pmf.max_of(pmfs).mean(), abs=1e-6)


@given(sample_lists, sample_lists,
       st.floats(min_value=0.01, max_value=0.99))
def test_mixture_mean_is_weighted_mean(a, b, w):
    pa, pb = pmf_from(a), pmf_from(b)
    mix = Pmf.mixture([pa, pb], [w, 1.0 - w])
    expected = w * pa.mean() + (1.0 - w) * pb.mean()
    assert mix.mean() == pytest.approx(expected, abs=1e-6)


@given(sample_lists, st.floats(min_value=0.0, max_value=0.1),
       st.floats(min_value=0.0, max_value=200.0))
def test_no_arrival_probability_bounds_and_monotonicity(samples, lam, extra):
    pmf = pmf_from(samples)
    p = pmf.no_arrival_probability(lam, extra_ms=extra)
    assert 0.0 <= p <= 1.0
    assert pmf.no_arrival_probability(lam * 2, extra_ms=extra) <= p + 1e-12
    assert pmf.no_arrival_probability(lam, extra_ms=extra + 50) <= p + 1e-12


@given(sample_lists, st.floats(min_value=0.0, max_value=400.0))
def test_shift_adds_constant(samples, shift):
    pmf = pmf_from(samples)
    if max(samples) + shift > 900:
        return  # saturation regime: mean no longer additive
    shifted = pmf.shift(shift)
    quantized = math.floor(shift / pmf.bin_ms + 0.5) * pmf.bin_ms
    assert shifted.mean() == pytest.approx(pmf.mean() + quantized, abs=1e-6)


# ---------------------------------------------------------------- ballots


@given(st.lists(st.tuples(st.integers(0, 10), st.sampled_from("abc")),
                min_size=2, max_size=10))
def test_ballot_total_order(pairs):
    ballots = [Ballot(n, p) for n, p in pairs]
    ordered = sorted(ballots)
    for a, b in zip(ordered, ordered[1:]):
        assert a < b or a == b
        assert not b < a


# ---------------------------------------------------------------- kernel


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False), min_size=1, max_size=30))
def test_kernel_fires_timeouts_in_order(delays_list):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delays_list:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(delays_list)


# ---------------------------------------------------------------- access


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=4),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_hotspot_samples_valid(n_hot, count, hot_prob, seed):
    import random
    n_items = n_hot + 500
    pattern = HotspotAccess(n_items, n_hot, hot_prob=hot_prob)
    keys = pattern.sample_keys(random.Random(seed), count)
    hotness = {pattern.is_hot(key) for key in keys}
    assert len(hotness) == 1  # all-hot or all-cold per transaction
    # Distinct keys, clamped to the region actually sampled from.
    pool = n_hot if hotness == {True} else n_items - n_hot
    assert len(keys) == len(set(keys)) == min(count, pool)
    indices = [int(key.split(":")[1]) for key in keys]
    assert all(0 <= i < n_items for i in indices)


# ---------------------------------------------------------------- admission


@given(st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=100))
def test_fixed_policy_attempt_fraction(likelihood, threshold, rate):
    import random
    policy = FixedPolicy(threshold, rate)
    rng = random.Random(7)
    n = 600
    fraction = sum(policy.decide(likelihood, rng) for _ in range(n)) / n
    if likelihood >= threshold / 100.0:
        assert fraction == 1.0
    else:
        assert fraction == pytest.approx(rate / 100.0, abs=0.08)


@given(st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=100))
def test_dynamic_policy_attempt_fraction(likelihood, threshold):
    import random
    policy = DynamicPolicy(threshold)
    rng = random.Random(8)
    n = 600
    fraction = sum(policy.decide(likelihood, rng) for _ in range(n)) / n
    if likelihood >= threshold / 100.0:
        assert fraction == 1.0
    else:
        assert fraction == pytest.approx(likelihood, abs=0.08)


# ---------------------------------------------------------------- MDCC


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=2 ** 16),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2_000.0),  # start time
            st.integers(min_value=0, max_value=3),        # key index
            st.integers(min_value=1, max_value=5),        # delta
        ),
        min_size=1, max_size=25),
)
def test_mdcc_no_lost_updates_and_no_stuck_options(seed, schedule):
    """Fundamental serialization property of the commit protocol.

    Whatever the concurrency pattern: every replica of every record
    converges to ``initial + sum(committed deltas)``, aborted deltas
    leave no trace, and no pending option survives the drain.
    """
    env = Environment()
    topo = uniform_topology(3, one_way_ms=25.0, sigma=0.1)
    cluster = Cluster(env, topo, RandomStreams(seed=seed))
    keys = [f"k{i}" for i in range(4)]
    initial = 10_000
    cluster.load({key: initial for key in keys})
    tms = [cluster.create_client(f"c{dc}", dc) for dc in range(3)]
    handles = []

    def driver(env):
        last = 0.0
        for start, key_index, delta in sorted(schedule):
            if start > last:
                yield env.timeout(start - last)
                last = start
            tm = tms[key_index % len(tms)]
            handles.append((keys[key_index], delta, tm.begin(
                [WriteOp(keys[key_index], Update.delta(-delta))])))

    env.process(driver(env))
    env.run()

    committed = {key: 0 for key in keys}
    for key, delta, handle in handles:
        assert handle.result is not None  # every transaction decided
        if handle.result.committed:
            committed[key] += delta
    for key in keys:
        expected = initial - committed[key]
        for dc in range(3):
            assert cluster.read_value(key, dc=dc) == expected
    assert cluster.total_pending_options() == 0
