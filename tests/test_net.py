"""Unit tests for latency models, topology, transport, and RPC."""

import random

import pytest

from repro.net import (
    ConstantLatency,
    EmpiricalLatency,
    LogNormalLatency,
    Message,
    RpcEndpoint,
    RpcTimeout,
    SpikingLatency,
    Topology,
    Transport,
    ec2_five_dc,
    uniform_topology,
)
from repro.sim import Environment, RandomStreams


# ---------------------------------------------------------------- latency


def test_constant_latency():
    model = ConstantLatency(12.0)
    rng = random.Random(0)
    assert model.sample(rng) == 12.0
    assert model.mean() == 12.0


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_lognormal_median_close_to_target():
    model = LogNormalLatency(median_ms=50.0, sigma=0.2, floor_ms=40.0)
    rng = random.Random(1)
    samples = sorted(model.sample(rng) for _ in range(4001))
    median = samples[len(samples) // 2]
    assert 45.0 < median < 55.0
    assert all(s > 40.0 for s in samples)


def test_lognormal_rejects_bad_params():
    with pytest.raises(ValueError):
        LogNormalLatency(median_ms=10.0, floor_ms=10.0)
    with pytest.raises(ValueError):
        LogNormalLatency(median_ms=10.0, sigma=0.0)


def test_spiking_latency_tail():
    base = ConstantLatency(10.0)
    model = SpikingLatency(base, spike_prob=0.1, spike_factor=(5.0, 5.0))
    rng = random.Random(2)
    samples = [model.sample(rng) for _ in range(2000)]
    spikes = [s for s in samples if s > 10.0]
    assert all(s == pytest.approx(50.0) for s in spikes)
    assert 0.05 < len(spikes) / len(samples) < 0.2
    assert model.mean() == pytest.approx(10.0 * (1 + 0.1 * 4.0))


def test_spiking_latency_validation():
    with pytest.raises(ValueError):
        SpikingLatency(ConstantLatency(1), spike_prob=1.5)
    with pytest.raises(ValueError):
        SpikingLatency(ConstantLatency(1), spike_factor=(0.5, 2.0))


def test_empirical_latency_sampling():
    model = EmpiricalLatency([(10.0, 1.0), (20.0, 3.0)])
    rng = random.Random(3)
    samples = [model.sample(rng) for _ in range(2000)]
    frac_20 = sum(1 for s in samples if s == 20.0) / len(samples)
    assert 0.65 < frac_20 < 0.85
    assert model.mean() == pytest.approx(17.5)


def test_empirical_latency_validation():
    with pytest.raises(ValueError):
        EmpiricalLatency([])
    with pytest.raises(ValueError):
        EmpiricalLatency([(1.0, 0.0)])
    with pytest.raises(ValueError):
        EmpiricalLatency([(-1.0, 1.0)])


# ---------------------------------------------------------------- topology


def test_ec2_preset_shape():
    topo = ec2_five_dc()
    assert len(topo) == 5
    assert topo.names == ["us-west", "us-east", "eu", "tokyo", "singapore"]
    # Mean RTT west<->east should be near the configured 80ms.
    rtt = topo.mean_rtt(topo.index_of("us-west"), topo.index_of("us-east"))
    assert 70.0 < rtt < 100.0


def test_topology_local_latency_small():
    topo = ec2_five_dc()
    assert topo.latency(0, 0).mean() < 1.0


def test_topology_missing_pair_rejected():
    with pytest.raises(ValueError):
        Topology(["a", "b"], {})


def test_uniform_topology():
    topo = uniform_topology(3, one_way_ms=40.0)
    for a in range(3):
        for b in range(3):
            if a != b:
                assert 60.0 < topo.mean_rtt(a, b) < 100.0


def test_index_of_unknown_raises():
    topo = uniform_topology(2)
    with pytest.raises(KeyError):
        topo.index_of("nope")


# ---------------------------------------------------------------- transport


def _make_transport(n=2, one_way=10.0):
    env = Environment()
    topo = uniform_topology(n, one_way_ms=one_way, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=5))
    return env, topo, transport


def test_transport_delivers_with_delay():
    env, _topo, transport = _make_transport()
    received = []
    transport.register("node-b", 1, lambda m: received.append((env.now, m)))
    transport.send(0, Message(src="a", dst="node-b", kind="ping", payload=1,
                              msg_id=transport.next_msg_id()))
    env.run()
    assert len(received) == 1
    when, message = received[0]
    assert 7.0 < when < 14.0
    assert message.payload == 1


def test_transport_unknown_destination_dropped():
    env, _topo, transport = _make_transport()
    transport.send(0, Message(src="a", dst="ghost", kind="ping", payload=1,
                              msg_id=transport.next_msg_id()))
    env.run()
    assert transport.dropped == 1
    assert transport.delivered == 0


def test_transport_duplicate_registration_rejected():
    env, _topo, transport = _make_transport()
    transport.register("x", 0, lambda m: None)
    with pytest.raises(ValueError):
        transport.register("x", 1, lambda m: None)


def test_transport_partition_blocks_and_heals():
    env, _topo, transport = _make_transport()
    received = []
    transport.register("node-b", 1, lambda m: received.append(env.now))
    transport.partition(0, 1)
    transport.send(0, Message(src="a", dst="node-b", kind="k", payload=None,
                              msg_id=transport.next_msg_id()))
    env.run()
    assert received == []
    transport.heal(0, 1)
    transport.send(0, Message(src="a", dst="node-b", kind="k", payload=None,
                              msg_id=transport.next_msg_id()))
    env.run()
    assert len(received) == 1


def test_transport_drop_probability():
    env, _topo, transport = _make_transport()
    received = []
    transport.register("node-b", 1, lambda m: received.append(1))
    transport.set_drop_probability(0, 1, 1.0)
    for _ in range(5):
        transport.send(0, Message(src="a", dst="node-b", kind="k",
                                  payload=None,
                                  msg_id=transport.next_msg_id()))
    env.run()
    assert received == []
    assert transport.dropped == 5


def test_transport_drop_probability_validation():
    env, _topo, transport = _make_transport()
    with pytest.raises(ValueError):
        transport.set_drop_probability(0, 1, 2.0)


def test_transport_local_delivery_fast():
    env, _topo, transport = _make_transport()
    received = []
    transport.register("node-a2", 0, lambda m: received.append(env.now))
    transport.send(0, Message(src="a", dst="node-a2", kind="k", payload=None,
                              msg_id=transport.next_msg_id()))
    env.run()
    assert received and received[0] < 1.0


# ---------------------------------------------------------------- rpc


def _make_rpc_pair():
    env = Environment()
    topo = uniform_topology(2, one_way_ms=10.0, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=6))
    client = RpcEndpoint(env, transport, "client", 0)
    server = RpcEndpoint(env, transport, "server", 1)
    return env, client, server


def test_rpc_round_trip():
    env, client, server = _make_rpc_pair()
    server.on("echo", lambda payload, src: payload * 2)
    results = []

    def caller(env):
        response = yield client.call("server", "echo", 21)
        results.append((env.now, response))

    env.process(caller(env))
    env.run()
    assert len(results) == 1
    when, value = results[0]
    assert value == 42
    assert 14.0 < when < 28.0  # one round trip


def test_rpc_timeout_fails_event():
    env, client, _server = _make_rpc_pair()
    # No handler registered for this kind: the request is dropped server
    # side, so the call must time out.
    caught = []

    def caller(env):
        try:
            yield client.call("server", "missing", None, timeout_ms=50)
        except RpcTimeout:
            caught.append(env.now)

    env.process(caller(env))
    env.run()
    assert caught == [50.0]


def test_rpc_async_response():
    env, client, server = _make_rpc_pair()

    def slow_handler(payload, src):
        def responder(env, request):
            yield env.timeout(30)
            server.respond(request, "late")
        return RpcEndpoint.NO_REPLY

    # Async responses need the raw message; emulate by registering a
    # handler that captures it through on() + manual respond.
    captured = {}

    def handler(payload, src):
        return RpcEndpoint.NO_REPLY

    server.on("work", handler)
    original = server._on_message

    def spying(message):
        if message.kind == "work":
            captured["msg"] = message
        original(message)

    server.transport._handlers["server"] = spying

    results = []

    def caller(env):
        response = yield client.call("server", "work", None)
        results.append(response)

    def responder(env):
        while "msg" not in captured:
            yield env.timeout(1)
        yield env.timeout(30)
        server.respond(captured["msg"], "late")

    env.process(caller(env))
    env.process(responder(env))
    env.run()
    assert results == ["late"]


def test_rpc_cast_one_way():
    env, client, server = _make_rpc_pair()
    received = []
    server.on("note", lambda payload, src: received.append((payload, src)))
    client.cast("server", "note", "hi")
    env.run()
    assert received == [("hi", "client")]


def test_rpc_duplicate_handler_rejected():
    env, _client, server = _make_rpc_pair()
    server.on("k", lambda p, s: None)
    with pytest.raises(ValueError):
        server.on("k", lambda p, s: None)
