"""Unit tests for the discrete-PMF machinery."""

import numpy as np
import pytest

from repro.core.histograms import Pmf, WindowedHistogram


def test_point_mass():
    pmf = Pmf.point(10.0, bin_ms=2.0, n_bins=16)
    assert pmf.probs[5] == 1.0
    assert pmf.mean() == pytest.approx(11.0)  # bin center


def test_point_mass_saturates():
    pmf = Pmf.point(1e9, bin_ms=2.0, n_bins=16)
    assert pmf.probs[-1] == 1.0


def test_from_samples_bins_correctly():
    pmf = Pmf.from_samples([0.5, 1.5, 2.5, 3.5], bin_ms=2.0, n_bins=4)
    assert pmf.probs[0] == pytest.approx(0.5)
    assert pmf.probs[1] == pytest.approx(0.5)


def test_from_samples_empty_rejected():
    with pytest.raises(ValueError):
        Pmf.from_samples([], bin_ms=1.0, n_bins=4)


def test_normalization():
    pmf = Pmf(np.array([2.0, 2.0]), bin_ms=1.0)
    assert pmf.probs.sum() == pytest.approx(1.0)


def test_invalid_pmfs_rejected():
    with pytest.raises(ValueError):
        Pmf(np.array([1.0]), bin_ms=0)
    with pytest.raises(ValueError):
        Pmf(np.array([-1.0, 2.0]), bin_ms=1.0)
    with pytest.raises(ValueError):
        Pmf(np.array([0.0, 0.0]), bin_ms=1.0)


def test_convolve_point_masses():
    a = Pmf.point(4.0, bin_ms=2.0, n_bins=32)
    b = Pmf.point(6.0, bin_ms=2.0, n_bins=32)
    c = a.convolve(b)
    assert c.probs[5] == pytest.approx(1.0)  # 4+6=10ms -> bin 5


def test_convolve_means_add():
    rng = np.random.default_rng(0)
    a = Pmf.from_samples(rng.uniform(0, 50, 4000), bin_ms=1.0, n_bins=256)
    b = Pmf.from_samples(rng.uniform(0, 30, 4000), bin_ms=1.0, n_bins=256)
    c = a.convolve(b)
    assert c.mean() == pytest.approx(a.mean() + b.mean(), rel=0.05)


def test_convolve_tail_saturation_keeps_mass():
    a = Pmf.point(14.0, bin_ms=2.0, n_bins=8)
    c = a.convolve(a)  # 28ms exceeds the 16ms range -> saturate
    assert c.probs.sum() == pytest.approx(1.0)
    assert c.probs[-1] == pytest.approx(1.0)


def test_convolve_bin_mismatch_rejected():
    a = Pmf.point(4.0, bin_ms=2.0, n_bins=8)
    b = Pmf.point(4.0, bin_ms=1.0, n_bins=8)
    with pytest.raises(ValueError):
        a.convolve(b)


def test_shift():
    pmf = Pmf.point(4.0, bin_ms=2.0, n_bins=8).shift(6.0)
    assert pmf.probs[5] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        pmf.shift(-1)


def test_shift_preserves_mass_at_saturation():
    pmf = Pmf.point(10.0, bin_ms=2.0, n_bins=8).shift(100.0)
    assert pmf.probs.sum() == pytest.approx(1.0)
    assert pmf.probs[-1] == pytest.approx(1.0)


def test_scale_halves_delays():
    pmf = Pmf.point(10.0, bin_ms=1.0, n_bins=32).scale(0.5)
    assert pmf.mean() == pytest.approx(5.5)  # bin center of bin 5


def test_mixture():
    a = Pmf.point(2.0, bin_ms=2.0, n_bins=8)
    b = Pmf.point(6.0, bin_ms=2.0, n_bins=8)
    mix = Pmf.mixture([a, b], [3.0, 1.0])
    assert mix.probs[1] == pytest.approx(0.75)
    assert mix.probs[3] == pytest.approx(0.25)


def test_mixture_validation():
    a = Pmf.point(2.0, bin_ms=2.0, n_bins=8)
    with pytest.raises(ValueError):
        Pmf.mixture([a], [1.0, 2.0])
    with pytest.raises(ValueError):
        Pmf.mixture([], [])
    with pytest.raises(ValueError):
        Pmf.mixture([a, a], [0.0, 0.0])


def test_max_of_point_masses():
    a = Pmf.point(2.0, bin_ms=2.0, n_bins=8)
    b = Pmf.point(6.0, bin_ms=2.0, n_bins=8)
    m = Pmf.max_of([a, b])
    assert m.probs[3] == pytest.approx(1.0)


def test_iid_max_shifts_right():
    rng = np.random.default_rng(1)
    pmf = Pmf.from_samples(rng.uniform(0, 100, 4000), bin_ms=1.0, n_bins=128)
    assert pmf.iid_max(4).mean() > pmf.mean()
    assert pmf.iid_max(1).mean() == pytest.approx(pmf.mean(), rel=1e-6)
    with pytest.raises(ValueError):
        pmf.iid_max(0)


def test_quorum_of_matches_sorted_order_statistic():
    # Monte-Carlo ground truth: 3rd smallest of 5 uniform delays.
    rng = np.random.default_rng(2)
    draws = rng.uniform(0, 100, size=(20000, 5))
    ground_truth = np.sort(draws, axis=1)[:, 2].mean()
    pmfs = [Pmf.from_samples(draws[:, i], bin_ms=1.0, n_bins=128)
            for i in range(5)]
    quorum_pmf = Pmf.quorum_of(pmfs, quorum=3)
    assert quorum_pmf.mean() == pytest.approx(ground_truth, rel=0.05)


def test_quorum_of_heterogeneous():
    # One instant replica (the leader's local vote) plus slow remotes:
    # quorum=1 is instant, quorum=3 waits for two remotes.
    local = Pmf.point(0.0, bin_ms=1.0, n_bins=64)
    remote = Pmf.point(40.0, bin_ms=1.0, n_bins=64)
    pmfs = [local, remote, remote, remote, remote]
    assert Pmf.quorum_of(pmfs, 1).mean() < 2.0
    assert Pmf.quorum_of(pmfs, 3).mean() == pytest.approx(40.5)


def test_quorum_validation():
    pmf = Pmf.point(1.0, bin_ms=1.0, n_bins=4)
    with pytest.raises(ValueError):
        Pmf.quorum_of([pmf, pmf], 3)
    with pytest.raises(ValueError):
        Pmf.quorum_of([pmf], 0)


def test_quantile():
    pmf = Pmf.from_samples([10.0] * 50 + [90.0] * 50, bin_ms=1.0, n_bins=128)
    assert pmf.quantile(0.25) == pytest.approx(10.0)
    assert pmf.quantile(0.99) == pytest.approx(90.0)
    with pytest.raises(ValueError):
        pmf.quantile(1.5)


def test_no_arrival_probability_limits():
    pmf = Pmf.point(100.0, bin_ms=1.0, n_bins=256)
    assert pmf.no_arrival_probability(0.0) == 1.0
    # lambda=0.01/ms over ~100.5ms window -> exp(-1.005)
    assert pmf.no_arrival_probability(0.01) == pytest.approx(
        np.exp(-1.005), rel=1e-6)
    # extra processing time shrinks the likelihood further
    assert (pmf.no_arrival_probability(0.01, extra_ms=50)
            < pmf.no_arrival_probability(0.01))
    with pytest.raises(ValueError):
        pmf.no_arrival_probability(-1.0)


# -------------------------------------------------------------- windowed


def test_windowed_histogram_basic():
    hist = WindowedHistogram(bin_ms=1.0, n_bins=16, generations=2)
    hist.add(3.0)
    hist.add(3.4)
    pmf = hist.pmf()
    assert pmf.probs[3] == pytest.approx(1.0)
    assert hist.total_count() == 2


def test_windowed_histogram_ages_out():
    hist = WindowedHistogram(bin_ms=1.0, n_bins=16, generations=2)
    hist.add(3.0)
    hist.rotate()
    assert hist.total_count() == 1  # still within window
    hist.rotate()
    assert hist.total_count() == 0  # aged out


def test_windowed_histogram_fallback():
    hist = WindowedHistogram(bin_ms=1.0, n_bins=16)
    fallback = Pmf.point(5.0, bin_ms=1.0, n_bins=16)
    assert hist.pmf(fallback) is fallback
    with pytest.raises(ValueError):
        hist.pmf()


def test_windowed_histogram_merge_counts():
    hist = WindowedHistogram(bin_ms=1.0, n_bins=4, generations=2)
    hist.merge_counts(np.array([1.0, 2.0, 3.0, 4.0]))
    assert hist.total_count() == 10
    with pytest.raises(ValueError):
        hist.merge_counts(np.zeros(3))


def test_windowed_histogram_validation():
    with pytest.raises(ValueError):
        WindowedHistogram(generations=0)
