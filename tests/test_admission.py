"""Tests for the admission-control policies (§4.2)."""

import random

import pytest

from repro.core.admission import DynamicPolicy, FixedPolicy, NoAdmission


def attempt_fraction(policy, likelihood, n=4000, seed=0):
    rng = random.Random(seed)
    return sum(policy.decide(likelihood, rng) for _ in range(n)) / n


def test_no_admission_attempts_everything():
    policy = NoAdmission()
    rng = random.Random(0)
    assert all(policy.decide(l, rng) for l in (0.0, 0.3, 1.0))
    assert policy.describe() == "none"


def test_fixed_above_threshold_always_attempts():
    policy = FixedPolicy(40, 20)
    assert attempt_fraction(policy, 0.41) == 1.0
    assert attempt_fraction(policy, 0.40) == 1.0  # boundary: >= threshold


def test_fixed_below_threshold_attempts_at_rate():
    policy = FixedPolicy(40, 20)
    fraction = attempt_fraction(policy, 0.1)
    assert 0.15 < fraction < 0.25


def test_fixed_full_rate_is_no_admission():
    policy = FixedPolicy(60, 100)
    assert attempt_fraction(policy, 0.01) == 1.0


def test_fixed_zero_rate_blocks_below_threshold():
    policy = FixedPolicy(60, 0)
    assert attempt_fraction(policy, 0.59) == 0.0
    assert attempt_fraction(policy, 0.61) == 1.0


def test_fixed_describe():
    assert FixedPolicy(40, 20).describe() == "F(40,20)"


def test_fixed_validation():
    with pytest.raises(ValueError):
        FixedPolicy(-1, 50)
    with pytest.raises(ValueError):
        FixedPolicy(50, 101)


def test_dynamic_above_threshold_always_attempts():
    policy = DynamicPolicy(50)
    assert attempt_fraction(policy, 0.5) == 1.0
    assert attempt_fraction(policy, 0.9) == 1.0


def test_dynamic_below_threshold_attempts_at_likelihood():
    policy = DynamicPolicy(50)
    fraction = attempt_fraction(policy, 0.3)
    assert 0.25 < fraction < 0.35
    fraction = attempt_fraction(policy, 0.05)
    assert 0.02 < fraction < 0.08


def test_dynamic_zero_threshold_is_no_admission():
    policy = DynamicPolicy(0)
    assert attempt_fraction(policy, 0.001) == 1.0


def test_dynamic_describe():
    assert DynamicPolicy(50).describe() == "Dyn(50)"


def test_dynamic_validation():
    with pytest.raises(ValueError):
        DynamicPolicy(150)


# ---------------------------------------------------------------- adaptive


def _make_adaptive(**kwargs):
    from repro.sim import Environment
    from repro.core.admission import AdaptiveProbingPolicy
    env = Environment()
    defaults = dict(probe_interval_ms=1_000.0, initial_rate=1.0,
                    step=0.1, min_rate=0.1)
    defaults.update(kwargs)
    return env, AdaptiveProbingPolicy(env, **defaults)


def test_adaptive_starts_at_initial_rate():
    env, policy = _make_adaptive(initial_rate=0.8)
    rng = random.Random(0)
    n = 2000
    fraction = sum(policy.decide(0.5, rng) for _ in range(n)) / n
    assert fraction == pytest.approx(0.8, abs=0.05)


def test_adaptive_backs_off_when_goodput_drops():
    env, policy = _make_adaptive()
    # Period 1: great goodput; period 2: none -> direction flips and
    # the rate moves.
    for _ in range(100):
        policy.observe_outcome(True)
    env.run(until=1_000)
    rate_after_1 = policy.admit_rate
    env.run(until=2_000)
    assert policy.admit_rate != rate_after_1
    assert policy.admit_rate >= policy.min_rate


def test_adaptive_rate_stays_in_bounds():
    env, policy = _make_adaptive(step=0.5, min_rate=0.2)
    env.run(until=20_000)  # many probes with zero goodput
    assert 0.2 <= policy.admit_rate <= 1.0
    assert policy.history  # trail recorded


def test_adaptive_hill_climbs_back_up():
    env, policy = _make_adaptive(initial_rate=0.5, step=0.1)

    def feeder(env):
        # Goodput grows whenever the rate grows: the climb should
        # drive the rate toward 1.0.
        while True:
            yield env.timeout(100)
            for _ in range(int(policy.admit_rate * 10)):
                policy.observe_outcome(True)

    env.process(feeder(env))
    env.run(until=30_000)
    assert policy.admit_rate > 0.5


def test_adaptive_validation():
    from repro.sim import Environment
    from repro.core.admission import AdaptiveProbingPolicy
    env = Environment()
    with pytest.raises(ValueError):
        AdaptiveProbingPolicy(env, probe_interval_ms=0)
    with pytest.raises(ValueError):
        AdaptiveProbingPolicy(env, initial_rate=0)
    with pytest.raises(ValueError):
        AdaptiveProbingPolicy(env, step=1.0)
    with pytest.raises(ValueError):
        AdaptiveProbingPolicy(env, min_rate=2.0)


def test_adaptive_describe():
    env, policy = _make_adaptive(initial_rate=0.75)
    assert policy.describe() == "Adaptive(0.75)"
