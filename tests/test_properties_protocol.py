"""More property-based tests: protocol resilience and server queues.

Complements ``test_properties.py`` with randomized *adversarial*
scenarios: partitions that cut and heal at random times, random
per-kind service costs, and random PLANET stage-block combinations —
checking that the core guarantees (decided ⇒ applied-or-discarded
everywhere reachable, exactly one stage block, likelihood bounds)
never depend on lucky schedules.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PlanetSession, TxState
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2 ** 16),
    cuts=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=3_000.0),   # cut at
            st.floats(min_value=100.0, max_value=2_000.0),  # heal after
            st.integers(0, 2), st.integers(0, 2),           # dc pair
        ),
        min_size=0, max_size=4),
    n_txns=st.integers(min_value=1, max_value=12),
)
def test_partitions_never_break_decided_transactions(seed, cuts, n_txns):
    """Whatever partitions come and go, a transaction that *decides*
    leaves consistent state: committed deltas applied on every replica
    that was reachable for visibility, no option of a decided
    transaction pending at its leader after the run."""
    env = Environment()
    topo = uniform_topology(3, one_way_ms=25.0, sigma=0.05)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      round_timeout_ms=2_000.0)
    cluster.load({"k": 1_000_000})
    tms = [cluster.create_client(f"c{dc}", dc) for dc in range(3)]
    handles = []

    def chaos(env):
        for at, duration, dc_a, dc_b in sorted(cuts):
            if dc_a == dc_b:
                continue
            delay = at - env.now
            if delay > 0:
                yield env.timeout(delay)
            cluster.transport.partition(dc_a, dc_b)
            yield env.timeout(duration)
            cluster.transport.heal(dc_a, dc_b)

    def load(env):
        for i in range(n_txns):
            handles.append(tms[i % 3].begin(
                [WriteOp("k", Update.delta(-1))]))
            yield env.timeout(250.0)

    env.process(chaos(env))
    env.process(load(env))
    env.run(until=60_000)

    committed = sum(
        1 for h in handles
        if h.result is not None and h.result.committed)
    decided_txids = {h.txid for h in handles if h.result is not None}
    # Leaders never keep a decided transaction's window open.
    for nodes in cluster.nodes.values():
        for node in nodes:
            record = node.records.get("k")
            if record is None or not node.leads("k"):
                continue
            for txid in record.pending:
                assert txid not in decided_txids
    # Every fully healed replica that received all visibilities agrees;
    # at minimum, no replica ever exceeds the committed delta count.
    for dc in range(3):
        value = cluster.read_value("k", dc=dc)
        assert 1_000_000 - committed <= value <= 1_000_000


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2 ** 16),
    service_ms=st.floats(min_value=0.0, max_value=3.0),
    phase2a_ms=st.floats(min_value=0.0, max_value=8.0),
    with_accept=st.booleans(),
    with_complete=st.booleans(),
    timeout_ms=st.floats(min_value=10.0, max_value=2_000.0),
)
def test_exactly_one_stage_block_under_any_configuration(
        seed, service_ms, phase2a_ms, with_accept, with_complete,
        timeout_ms):
    """Figure 2's contract — exactly one stage block within the
    timeout — must hold under every service-cost regime, block
    combination, and timeout."""
    env = Environment()
    topo = uniform_topology(3, one_way_ms=30.0, sigma=0.1)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      storage_service_ms=service_ms,
                      storage_service_overrides={"phase2a": phase2a_ms})
    cluster.load({"k": 100})
    session = PlanetSession(cluster, "web", 0)
    fired = []
    tx = session.transaction([WriteOp("k", Update.delta(-1))],
                             timeout_ms=timeout_ms)
    tx.on_failure(lambda i: fired.append("failure"))
    if with_accept:
        tx.on_accept(lambda i: fired.append("accept"))
    if with_complete:
        tx.on_complete(lambda i: fired.append("complete"))
    tx.finally_callback(lambda i: fired.append("finally"))
    planet_tx = tx.execute()
    env.run(until=timeout_ms + 30_000)

    stage_blocks = [f for f in fired if f != "finally"]
    assert len(stage_blocks) == 1
    assert planet_tx.committed is not None  # lossless net: always decides
    assert fired.count("finally") == 1
    # Stage selection respects the definition lattice.
    if stage_blocks == ["complete"]:
        assert with_complete
    if stage_blocks == ["accept"]:
        assert with_accept


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    n_messages=st.integers(min_value=1, max_value=60),
    service_ms=st.floats(min_value=0.1, max_value=5.0),
)
def test_queued_server_conserves_messages(seed, n_messages, service_ms):
    """The FIFO server neither loses nor duplicates messages, and the
    drain time is exactly messages x service time once saturated."""
    from repro.net import Message, RpcEndpoint, Transport

    env = Environment()
    topo = uniform_topology(2, one_way_ms=5.0, sigma=0.01)
    transport = Transport(env, topo, RandomStreams(seed=seed))
    server = RpcEndpoint(env, transport, "server", 1,
                         service_time_ms=service_ms)
    seen = []
    server.on("blast", lambda payload, src: seen.append(payload))
    for i in range(n_messages):
        transport.send(0, Message(src="x", dst="server", kind="blast",
                                  payload=i,
                                  msg_id=transport.next_msg_id()))
    env.run()
    assert sorted(seen) == list(range(n_messages))
    assert server.max_queue_depth <= n_messages
