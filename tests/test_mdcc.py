"""Integration tests for the MDCC classic commit protocol."""

import pytest

from repro.mdcc import Cluster, Mastership
from repro.net import uniform_topology, ec2_five_dc
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_cluster(n_dc=3, one_way=10.0, partitions=1, mastership="hash",
                 seed=42):
    env = Environment()
    topo = uniform_topology(n_dc, one_way_ms=one_way, sigma=0.01)
    cluster = Cluster(env, topo, RandomStreams(seed=seed),
                      partitions_per_dc=partitions, mastership=mastership)
    return env, cluster


# ---------------------------------------------------------------- mastership


def test_mastership_hash_spreads_leaders():
    mastership = Mastership(5, "hash")
    dcs = {mastership.leader_dc(f"item:{i}") for i in range(200)}
    assert dcs == set(range(5))
    assert mastership.leader_distribution() == [0.2] * 5


def test_mastership_fixed():
    mastership = Mastership(3, 1)
    assert all(mastership.leader_dc(f"k{i}") == 1 for i in range(10))
    assert mastership.leader_distribution() == [0.0, 1.0, 0.0]


def test_mastership_callable():
    mastership = Mastership(3, lambda key: 2)
    assert mastership.leader_dc("anything") == 2


def test_mastership_validation():
    with pytest.raises(ValueError):
        Mastership(0)
    with pytest.raises(ValueError):
        Mastership(3, 7)


# ---------------------------------------------------------------- cluster wiring


def test_cluster_replica_addresses_one_per_dc():
    _env, cluster = make_cluster(n_dc=3, partitions=2)
    addresses = cluster.replica_addresses("item:1")
    assert len(addresses) == 3
    partition = cluster.partition_of("item:1")
    assert all(addr.endswith(f"/{partition}") for addr in addresses)


def test_cluster_load_replicates_everywhere():
    _env, cluster = make_cluster(n_dc=3, partitions=2)
    cluster.load({"item:1": 50, "item:2": 70})
    for dc in range(3):
        assert cluster.read_value("item:1", dc=dc) == 50
        assert cluster.read_value("item:2", dc=dc) == 70


def test_cluster_duplicate_client_rejected():
    _env, cluster = make_cluster()
    cluster.create_client("web", 0)
    with pytest.raises(ValueError):
        cluster.create_client("web", 1)


def test_cluster_validation():
    env = Environment()
    topo = uniform_topology(2)
    with pytest.raises(ValueError):
        Cluster(env, topo, RandomStreams(), partitions_per_dc=0)


# ---------------------------------------------------------------- single txn


def test_single_transaction_commits():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-3))])
    env.run()
    assert handle.result is not None
    assert handle.result.committed
    assert handle.result.response_time_ms > 0
    assert tm.committed == 1


def test_commit_applies_value_at_every_dc():
    env, cluster = make_cluster(n_dc=3)
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    tm.begin([WriteOp("item:1", Update.delta(-3))])
    env.run()
    for dc in range(3):
        assert cluster.read_value("item:1", dc=dc) == 97
    assert cluster.total_pending_options() == 0


def test_accepted_fires_before_decided():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    times = {}

    def waiter(env):
        yield handle.accepted_event
        times["accepted"] = env.now
        yield handle.decided_event
        times["decided"] = env.now

    env.process(waiter(env))
    env.run()
    assert times["accepted"] < times["decided"]
    assert handle.accepted_ms == times["accepted"]


def test_transaction_requires_writes():
    _env, cluster = make_cluster()
    tm = cluster.create_client("web", 0)
    with pytest.raises(ValueError):
        tm.begin([])


def test_progress_hooks_see_stages():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    stages = []
    handle.progress_hooks.append(lambda stage, h: stages.append(stage))
    env.run()
    assert stages == ["reads_done", "proposed", "accepted", "learned",
                      "decided"]


def test_reads_populate_statistics():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    env.run()
    reply = handle.reads["item:1"]
    assert reply.value == 100
    assert reply.exists
    assert reply.leader_dc == cluster.leader_dc("item:1")
    assert handle.w_ms is not None and handle.w_ms > 0


def test_think_time_delays_propose():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))],
                      think_time_ms=50.0)
    env.run()
    assert handle.w_ms >= 50.0


# ---------------------------------------------------------------- conflicts


def test_concurrent_transactions_conflict():
    env, cluster = make_cluster(n_dc=3, one_way=20.0)
    cluster.load({"item:1": 100})
    tm_a = cluster.create_client("a", 0)
    tm_b = cluster.create_client("b", 1)
    h_a = tm_a.begin([WriteOp("item:1", Update.delta(-1))])
    h_b = tm_b.begin([WriteOp("item:1", Update.delta(-1))])
    env.run()
    outcomes = sorted([h_a.result.committed, h_b.result.committed])
    assert outcomes == [False, True]  # exactly one wins
    assert cluster.read_value("item:1") == 99
    assert cluster.total_pending_options() == 0


def test_sequential_transactions_both_commit():
    env, cluster = make_cluster()
    cluster.load({"item:1": 100})
    tm = cluster.create_client("web", 0)
    results = []

    def driver(env):
        h1 = tm.begin([WriteOp("item:1", Update.delta(-1))])
        yield h1.decided_event
        # Wait out visibility propagation before the second attempt.
        yield env.timeout(200)
        h2 = tm.begin([WriteOp("item:1", Update.delta(-1))])
        yield h2.decided_event
        results.extend([h1.result.committed, h2.result.committed])

    env.process(driver(env))
    env.run()
    assert results == [True, True]
    assert cluster.read_value("item:1") == 98


def test_multi_record_transaction_commits():
    env, cluster = make_cluster()
    cluster.load({"item:1": 10, "item:2": 20, "item:3": 30})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([
        WriteOp("item:1", Update.delta(-1)),
        WriteOp("item:2", Update.delta(-2)),
        WriteOp("item:3", Update.delta(-3)),
    ])
    env.run()
    assert handle.result.committed
    assert cluster.read_value("item:1") == 9
    assert cluster.read_value("item:2") == 18
    assert cluster.read_value("item:3") == 27


def test_multi_record_atomicity_on_conflict():
    # B writes {item:1, item:2}; A holds item:2 -> B must abort entirely
    # and item:1 must stay untouched (atomic durability).
    env, cluster = make_cluster(n_dc=3, one_way=20.0)
    cluster.load({"item:1": 10, "item:2": 20})
    tm_a = cluster.create_client("a", 0)
    tm_b = cluster.create_client("b", 0)

    def driver(env):
        h_a = tm_a.begin([WriteOp("item:2", Update.delta(-5))])
        # Let A's option reach the leader first, then race B against
        # A's still-pending window.
        yield env.timeout(25)
        h_b = tm_b.begin([
            WriteOp("item:1", Update.delta(-1)),
            WriteOp("item:2", Update.delta(-1)),
        ])
        yield h_b.decided_event
        assert not h_b.result.committed
        assert "item:2" in h_b.result.rejected_keys

    env.process(driver(env))
    env.run()
    assert cluster.read_value("item:1") == 10  # B's accepted option undone
    assert cluster.read_value("item:2") == 15  # only A applied
    assert cluster.total_pending_options() == 0


def test_floor_rejects_oversell():
    env, cluster = make_cluster()
    cluster.load({"item:1": 2})
    tm = cluster.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-5, floor=0))])
    env.run()
    assert not handle.result.committed
    assert cluster.read_value("item:1") == 2


def test_fixed_mastership_local_leader_is_fast():
    # Client co-located with all leaders commits in ~1 WAN round trip;
    # a remote client pays propose + learned on top.
    env_local, cluster_local = make_cluster(mastership=0, one_way=50.0)
    cluster_local.load({"item:1": 10})
    tm = cluster_local.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    env_local.run()
    local_time = handle.result.response_time_ms

    env_remote, cluster_remote = make_cluster(mastership=1, one_way=50.0)
    cluster_remote.load({"item:1": 10})
    tm = cluster_remote.create_client("web", 0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    env_remote.run()
    remote_time = handle.result.response_time_ms

    assert local_time < remote_time


def test_ec2_topology_end_to_end():
    env = Environment()
    cluster = Cluster(env, ec2_five_dc(spike_prob=0.0),
                      RandomStreams(seed=7))
    cluster.load({f"item:{i}": 100 for i in range(10)})
    tms = [cluster.create_client(f"web-{dc}", dc) for dc in range(5)]
    handles = [tm.begin([WriteOp(f"item:{i}", Update.delta(-1))])
               for i, tm in enumerate(tms)]
    env.run()
    assert all(h.result is not None for h in handles)
    assert all(h.result.committed for h in handles)


# ---------------------------------------------------------------- reads


def test_read_only_returns_committed_values():
    env, cluster = make_cluster()
    cluster.load({"item:1": 10, "item:2": 20})
    tm = cluster.create_client("reader", 0)
    seen = []

    def driver(env):
        replies = yield tm.read_only(["item:1", "item:2"])
        seen.append({key: reply.value for key, reply in replies.items()})

    env.process(driver(env))
    env.run()
    assert seen == [{"item:1": 10, "item:2": 20}]


def test_read_only_does_not_see_pending_options():
    env, cluster = make_cluster(n_dc=3, one_way=50.0, mastership=0)
    cluster.load({"item:1": 10})
    writer = cluster.create_client("writer", 0)
    reader = cluster.create_client("reader", 0)
    seen = []

    def driver(env):
        writer.begin([WriteOp("item:1", Update.delta(-5))])
        yield env.timeout(10)  # option pending at the local leader
        replies = yield reader.read_only(["item:1"])
        seen.append((replies["item:1"].value,
                     replies["item:1"].has_pending))

    env.process(driver(env))
    env.run()
    value, had_pending = seen[0]
    assert value == 10  # pending write invisible (read committed)
    assert had_pending  # ...but the reply reports the open window


def test_read_only_sees_values_after_visibility():
    env, cluster = make_cluster()
    cluster.load({"item:1": 10})
    tm = cluster.create_client("rw", 0)
    seen = []

    def driver(env):
        handle = tm.begin([WriteOp("item:1", Update.delta(-5))])
        yield handle.decided_event
        yield env.timeout(200)  # let visibility propagate locally
        replies = yield tm.read_only(["item:1"])
        seen.append(replies["item:1"].value)

    env.process(driver(env))
    env.run()
    assert seen == [5]


def test_read_only_missing_key():
    env, cluster = make_cluster()
    tm = cluster.create_client("reader", 0)
    seen = []

    def driver(env):
        replies = yield tm.read_only(["ghost"])
        seen.append(replies["ghost"])

    env.process(driver(env))
    env.run()
    assert not seen[0].exists
    assert seen[0].value is None


def test_read_only_requires_keys():
    env, cluster = make_cluster()
    tm = cluster.create_client("reader", 0)
    import pytest as _pytest
    with _pytest.raises(ValueError):
        tm.read_only([])
