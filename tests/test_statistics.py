"""Tests for statistics collection, dissemination, and model building."""

import pytest

from repro.core.statistics import OracleLatencySource, StatisticsService
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams


def make_cluster(n_dc=3, one_way=20.0, seed=9):
    env = Environment()
    topo = uniform_topology(n_dc, one_way_ms=one_way, sigma=0.05)
    streams = RandomStreams(seed=seed)
    cluster = Cluster(env, topo, streams)
    return env, topo, streams, cluster


# ---------------------------------------------------------------- oracle


def test_oracle_matrix_means_match_topology():
    _env, topo, streams, _cluster = make_cluster()
    matrix = OracleLatencySource(topo, streams, samples=2000).latency_matrix()
    for a in range(3):
        for b in range(3):
            if a != b:
                assert matrix.rtt(a, b).mean() == pytest.approx(
                    topo.mean_rtt(a, b), rel=0.1)


# ---------------------------------------------------------------- probing


def test_agents_measure_all_pairs():
    env, topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams, rotate_ms=0)
    for dc in range(3):
        stats.start_agent(dc, ping_interval_ms=500.0)
    env.run(until=5_000)
    assert stats.coverage() >= 3 * 3  # includes local pairs
    matrix = stats.latency_matrix()
    assert matrix.rtt(0, 1).mean() == pytest.approx(
        topo.mean_rtt(0, 1), rel=0.25)


def test_latency_matrix_fallback_for_unmeasured_pairs():
    env, topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams)
    stats.start_agent(0, ping_interval_ms=500.0)  # only DC 0 probes
    env.run(until=3_000)
    with pytest.raises(ValueError):
        stats.latency_matrix()  # pair (1, 2) never measured
    matrix = stats.latency_matrix(fallback=topo)
    assert matrix.rtt(1, 2).mean() == pytest.approx(
        topo.mean_rtt(1, 2), rel=0.2)


def test_rotation_ages_out_old_network_conditions():
    env, _topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams, generations=2,
                              rotate_ms=1_000)
    stats.record_rtt(0, 1, 40.0)
    env.run(until=5_000)  # several rotations, no new samples
    hist = stats._rtt[(0, 1)]
    assert hist.total_count() == 0


# ---------------------------------------------------------------- sizes


def test_size_distribution_default():
    env, _topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams)
    assert stats.size_distribution() == {1: 1.0}


def test_size_distribution_normalizes():
    env, _topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams)
    for size in (1, 1, 2, 4):
        stats.record_transaction_size(size)
    dist = stats.size_distribution()
    assert dist == {1: 0.5, 2: 0.25, 4: 0.25}
    with pytest.raises(ValueError):
        stats.record_transaction_size(0)


# ---------------------------------------------------------------- model build


def test_build_model_from_measurements():
    env, topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams, rotate_ms=0)
    for dc in range(3):
        stats.start_agent(dc, ping_interval_ms=500.0)
    stats.record_transaction_size(1)
    stats.record_transaction_size(2)
    env.run(until=5_000)
    model = stats.build_model(fallback=topo)
    assert model.ready
    likelihood = model.record_likelihood(0, 1, 0.001)
    assert 0.0 < likelihood < 1.0
    assert model.size_dist == {1: 0.5, 2: 0.5}


def test_measured_model_close_to_oracle_model():
    env, topo, streams, cluster = make_cluster()
    stats = StatisticsService(env, cluster, streams, rotate_ms=0)
    for dc in range(3):
        stats.start_agent(dc, ping_interval_ms=200.0)
    env.run(until=20_000)
    measured = stats.build_model(fallback=topo)
    oracle_matrix = OracleLatencySource(
        topo, streams, samples=2000).latency_matrix()
    from repro.core.likelihood import CommitLikelihoodModel
    oracle = CommitLikelihoodModel(oracle_matrix, [1 / 3] * 3)
    oracle.precompute()
    for rate in (0.0005, 0.002, 0.01):
        assert measured.record_likelihood(0, 1, rate) == pytest.approx(
            oracle.record_likelihood(0, 1, rate), abs=0.05)
